package native

import (
	"math/bits"
	"unsafe"
)

// prefetchHeader hints the cache line holding a bucket header.
func prefetchHeader(h *header) { prefetchT0(unsafe.Pointer(h)) }

// Native hash aggregation — the extension the paper's conclusion
// proposes ("our techniques can improve other hash-based algorithms such
// as hash-based group-by and aggregation") running on real memory. The
// table reuses the flat cache-line layout of the join table (32-byte
// headers, two per line, shared overflow slab), but cells reference
// accumulator records in a separate slab instead of build tuples. The
// record slab doubles as the group list: records are appended in
// first-seen order, so iteration is deterministic and needs no table
// walk.
//
// The per-tuple dependence chain is header -> overflow cells -> record,
// the same shape as probing with an upsert twist. Group prefetching
// batches the header fetches: for each G-tuple batch the header lines
// are prefetched in one pass and the upserts run against warm lines in a
// second. Unlike the simulator's aggregation, no busy flags are needed —
// native upserts within a batch complete in order, so a group created by
// one tuple is simply found by the next.

// AggInput is one tuple of an aggregation batch: the memoized hash code
// of the group key, the key itself, and the 4-byte value folded into the
// group's sum.
type AggInput struct {
	Code  uint32
	Key   uint32
	Value uint32
}

// aggRec is one group's accumulator.
type aggRec struct {
	key   uint32
	_     uint32
	count uint64
	sum   uint64
}

// AggTable is the native flat group-by table.
type AggTable struct {
	headers []header
	cells   []cell   // overflow slab; ref = record index
	recs    []aggRec // record slab, first-seen order; index 0 reserved
	mask    uint32
}

// NewAggTable sizes a table for expectedGroups groups: the next power of
// two buckets, load factor <= 1.
func NewAggTable(expectedGroups int) *AggTable {
	t := &AggTable{}
	t.Reset(expectedGroups)
	return t
}

// Reset re-sizes and clears the table for reuse, keeping allocations
// when the new expectation is no larger.
func (t *AggTable) Reset(expectedGroups int) {
	if expectedGroups < 1 {
		expectedGroups = 1
	}
	nb := 1 << uint(bits.Len(uint(expectedGroups-1)))
	if nb <= cap(t.headers) {
		t.headers = t.headers[:nb]
		clear(t.headers)
	} else {
		t.headers = make([]header, nb)
	}
	if cap(t.cells) > 0 {
		t.cells = t.cells[:1]
	} else {
		t.cells = make([]cell, 1, 1+expectedGroups/4)
	}
	if cap(t.recs) > 0 {
		t.recs = t.recs[:1]
	} else {
		t.recs = make([]aggRec, 1, 1+expectedGroups)
	}
	t.mask = uint32(nb - 1)
}

// NGroups returns the number of distinct groups seen.
func (t *AggTable) NGroups() int { return len(t.recs) - 1 }

func (t *AggTable) bucket(code uint32) uint32 { return code & t.mask }

// Upsert folds one (key, value) into its group, creating the group on
// first sight. The hash code is only a filter: a code match still
// compares the record's key.
func (t *AggTable) Upsert(in AggInput) {
	h := &t.headers[t.bucket(in.Code)]
	if h.count > 0 {
		if h.code0 == in.Code {
			if r := &t.recs[h.tuple0]; r.key == in.Key {
				r.count++
				r.sum += uint64(in.Value)
				return
			}
		}
		for i := uint32(0); i < h.count-1; i++ {
			c := &t.cells[h.cells+i]
			if c.code == in.Code {
				if r := &t.recs[c.ref]; r.key == in.Key {
					r.count++
					r.sum += uint64(in.Value)
					return
				}
			}
		}
	}
	// New group: append a record and link a cell to it.
	ref := uint64(len(t.recs))
	t.recs = append(t.recs, aggRec{key: in.Key, count: 1, sum: uint64(in.Value)})
	if h.count == 0 {
		h.code0 = in.Code
		h.tuple0 = ref
		h.count = 1
		return
	}
	over := h.count - 1
	if h.cells == 0 || over == h.cap_ {
		t.growAgg(h, over)
	}
	t.cells[h.cells+over] = cell{code: in.Code, ref: ref}
	h.count++
}

// growAgg allocates or doubles a bucket's overflow array in the slab.
func (t *AggTable) growAgg(h *header, over uint32) {
	newCap := uint32(initialCellCap)
	if h.cap_ > 0 {
		newCap = h.cap_ * 2
	}
	idx := uint32(len(t.cells))
	t.cells = append(t.cells, make([]cell, newCap)...)
	if h.cells != 0 && over > 0 {
		copy(t.cells[idx:idx+over], t.cells[h.cells:h.cells+over])
	}
	h.cells = idx
	h.cap_ = newCap
}

// UpsertBatch folds one batch of tuples into the table. Baseline
// processes each tuple's full chain in turn; Group and Pipelined batch
// the header prefetches g tuples at a time and run the upserts against
// warm lines (the software pipeline degenerates to the same two-pass
// shape here — an upsert's structural writes cannot be deferred without
// the busy-flag machinery, which native in-order batches make redundant).
func (t *AggTable) UpsertBatch(batch []AggInput, scheme Scheme, g int) {
	if scheme == Baseline || g < 2 {
		for i := range batch {
			t.Upsert(batch[i])
		}
		return
	}
	for lo := 0; lo < len(batch); lo += g {
		hi := lo + g
		if hi > len(batch) {
			hi = len(batch)
		}
		for i := lo; i < hi; i++ {
			prefetchHeader(&t.headers[t.bucket(batch[i].Code)])
		}
		for i := lo; i < hi; i++ {
			t.Upsert(batch[i])
		}
	}
}

// Each iterates the groups in first-seen order.
func (t *AggTable) Each(fn func(key uint32, count, sum uint64)) {
	for i := 1; i < len(t.recs); i++ {
		r := &t.recs[i]
		fn(r.key, r.count, r.sum)
	}
}
