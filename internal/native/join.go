package native

import (
	"encoding/binary"
	"math/bits"
	"unsafe"

	"hashjoin/internal/arena"
	"hashjoin/internal/spill"
)

// pairJoiner joins one build/probe partition pair natively. One lives in
// each morsel worker; the table and stage-state scratch are recycled
// across pairs and across joins (see Joiner.worker).
type pairJoiner struct {
	data []byte
	t    *Table
	g, d int

	states []groupState // group/pipeline stage state, reused

	// sink, when set, receives every validated match (build tuple
	// address, probe tuple address). It lets the probe loops feed a
	// batch pipeline; nil keeps the counting-only fast path.
	sink func(buildRef, probeRef uint64)

	// spill, when set, is the join's shared out-of-core coordinator: an
	// irreducible over-budget pair goes to disk instead of failing (see
	// spill.go). The entry and page scratch below is recycled across
	// spilled chunks.
	spill       *spillState
	spillBuild  []Entry
	spillProbe  []Entry
	spillPinned []spill.Page

	nOutput int
	keySum  uint64
}

func newPairJoiner() *pairJoiner {
	return &pairJoiner{t: NewTable(1, 0)}
}

// statesFor returns n stage-state slots, reusing the scratch array and
// the match buffers inside it; each slot's matches is reset to empty.
func (j *pairJoiner) statesFor(n int) []groupState {
	for len(j.states) < n {
		j.states = append(j.states, groupState{matches: make([]uint64, 0, 4)})
	}
	s := j.states[:n]
	for i := range s {
		s[i].matches = s[i].matches[:0]
	}
	return s
}

// buildKey loads the join key from the build tuple bytes — the dependent
// random access the probe's final stage must make, as in the paper.
func (j *pairJoiner) buildKey(ref uint64) uint32 {
	return binary.LittleEndian.Uint32(j.data[ref-arena.Base:])
}

// prefetchTuple hints the cache line holding the tuple's key.
func (j *pairJoiner) prefetchTuple(ref uint64) {
	prefetchT0(unsafe.Pointer(&j.data[ref-arena.Base]))
}

// emit records one join match: the build key re-read from memory must
// equal the probe key (the hash code was only a filter).
func (j *pairJoiner) emit(buildRef, probeRef uint64, probeKey uint32) {
	if k := j.buildKey(buildRef); k == probeKey {
		j.nOutput++
		j.keySum += uint64(k)
		if j.sink != nil {
			j.sink(buildRef, probeRef)
		}
	}
}

// maxRepartitionDepth bounds recursive re-partitioning of an oversized
// pair. Each level multiplies the fan-out by at least 2, so 8 levels on
// top of the initial fan-out split a pair at least 256-fold; a pair
// still over budget after that is dominated by duplicate hash codes that
// no amount of radix splitting can separate.
const maxRepartitionDepth = 8

// joinPairBudget joins one partition pair under a memory budget: a pair
// whose estimated footprint fits cfg.MemBudget is joined directly; an
// oversized pair is radix-split on the hash bits above shift — the GRACE
// degradation the paper's partition phase applies when a partition
// exceeds memory — and each sub-pair joined recursively. It returns the
// deepest recursion level used, or a *BudgetError when the depth bound
// or the hash bits run out before the pair fits.
func (j *pairJoiner) joinPairBudget(build, probe []Entry, shift uint, cfg Config, depth int) (int, error) {
	if len(build) == 0 || len(probe) == 0 {
		return depth, nil
	}
	need := pairFootprint(len(build))
	if need <= cfg.MemBudget {
		j.joinPair(build, probe, shift, cfg.Scheme)
		return depth, nil
	}
	bitsLeft := 32 - int(shift)
	if depth >= maxRepartitionDepth || bitsLeft <= 0 {
		// Irreducible: duplicate hash codes no radix split can separate.
		// The final tier of the ladder joins the pair out of core in
		// budget-sized build chunks; only Config.NoSpill (or a schema
		// that cannot round-trip through slotted pages) still fails.
		if j.spill != nil {
			return depth, j.joinPairSpill(build, probe, shift, cfg)
		}
		return depth, &BudgetError{Budget: cfg.MemBudget, Need: need, Depth: depth}
	}
	// Smallest power-of-two sub-fan-out that brings an average sub-pair
	// under budget, capped by the hash bits still unconsumed above shift.
	sub := 2
	for sub < 256 && need > cfg.MemBudget*sub {
		sub <<= 1
	}
	if maxSub := 1 << uint(min(bitsLeft, 8)); sub > maxSub {
		sub = maxSub
	}
	subBits := uint(bits.TrailingZeros(uint(sub)))
	bsub := scatterEntries(build, shift, sub)
	psub := scatterEntries(probe, shift, sub)
	maxDepth := depth
	for i := 0; i < sub; i++ {
		d, err := j.joinPairBudget(bsub[i], psub[i], shift+subBits, cfg, depth+1)
		if err != nil {
			return d, err
		}
		if d > maxDepth {
			maxDepth = d
		}
	}
	return maxDepth, nil
}

// scatterEntries radix-partitions entries on fanout's worth of hash-code
// bits starting at shift: counting pass, prefix sum, scatter. The
// sub-partition buffers live on the Go heap, not the arena — this is the
// oversized-pair slow path, and its scratch must not count against the
// very budget it is trying to meet.
func scatterEntries(entries []Entry, shift uint, fanout int) [][]Entry {
	mask := uint32(fanout - 1)
	hist := make([]int, fanout)
	for i := range entries {
		hist[(entries[i].Code>>shift)&mask]++
	}
	offs := make([]int, fanout+1)
	sum := 0
	for i, h := range hist {
		offs[i] = sum
		sum += h
	}
	offs[fanout] = sum
	out := make([]Entry, len(entries))
	cursor := hist
	copy(cursor, offs[:fanout])
	for i := range entries {
		d := (entries[i].Code >> shift) & mask
		out[cursor[d]] = entries[i]
		cursor[d]++
	}
	parts := make([][]Entry, fanout)
	for i := 0; i < fanout; i++ {
		parts[i] = out[offs[i]:offs[i+1]]
	}
	return parts
}

// joinPair builds a table over build and probes it with probe. shift is
// the partitioner's radix width, so bucket numbers use untouched bits.
func (j *pairJoiner) joinPair(build, probe []Entry, shift uint, scheme Scheme) {
	if len(build) == 0 || len(probe) == 0 {
		return
	}
	j.t.Reset(len(build), shift)
	j.buildFor(build, scheme)
	j.probeFor(probe, scheme)
}

// buildFor inserts build into the (already Reset) table with the
// scheme's loop restructuring. Split out of joinPair because the spill
// tier builds over chunks of one partition and probes each chunk with
// the whole probe stream.
func (j *pairJoiner) buildFor(build []Entry, scheme Scheme) {
	switch scheme {
	case Group:
		j.buildGroup(build)
	case Pipelined:
		j.buildPipelined(build)
	default:
		j.buildBaseline(build)
	}
}

// probeFor probes the current table with the scheme's restructuring.
func (j *pairJoiner) probeFor(probe []Entry, scheme Scheme) {
	if len(probe) == 0 {
		return
	}
	switch scheme {
	case Group:
		j.probeGroup(probe)
	case Pipelined:
		j.probePipelined(probe)
	default:
		j.probeBaseline(probe)
	}
}

// --- Baseline ---

// buildBaseline inserts one tuple at a time, the unmodified GRACE loop.
func (j *pairJoiner) buildBaseline(build []Entry) {
	for i := range build {
		j.t.Insert(build[i].Code, build[i].Ref)
	}
}

// probeBaseline walks each probe tuple's full dependence chain — bucket
// header, overflow cells, matching build tuples — before touching the
// next tuple. Every step can miss, and the misses serialize.
func (j *pairJoiner) probeBaseline(probe []Entry) {
	t := j.t
	for i := range probe {
		e := &probe[i]
		h := &t.headers[t.bucket(e.Code)]
		if h.count == 0 {
			continue
		}
		if h.code0 == e.Code {
			j.emit(h.tuple0, e.Ref, e.Key)
		}
		for k := uint32(0); k < h.count-1; k++ {
			c := &t.cells[h.cells+k]
			if c.code == e.Code {
				j.emit(c.ref, e.Ref, e.Key)
			}
		}
	}
}

// --- Group prefetching (paper section 4) ---

// groupState carries one tuple's state across the probe stages.
type groupState struct {
	key     uint32
	code    uint32
	ref     uint64 // probe tuple address, for match emission
	hdr     *header
	count   uint32
	cells   uint32
	matches []uint64
}

// probeGroup strip-mines the probe loop into G-tuple groups processed in
// stages; each stage performs one dependent reference per tuple and
// prefetches the next stage's references, so one tuple's cache misses
// overlap with the computation and misses of the other G-1.
func (j *pairJoiner) probeGroup(probe []Entry) {
	t := j.t
	g := j.g
	states := j.statesFor(g)

	for lo := 0; lo < len(probe); lo += g {
		hi := lo + g
		if hi > len(probe) {
			hi = len(probe)
		}
		n := hi - lo

		// Stage 0: compute bucket numbers; prefetch the headers.
		for i := 0; i < n; i++ {
			e := &probe[lo+i]
			st := &states[i]
			st.key, st.code, st.ref = e.Key, e.Code, e.Ref
			st.hdr = &t.headers[t.bucket(e.Code)]
			st.matches = st.matches[:0]
			prefetchT0(unsafe.Pointer(st.hdr))
		}

		// Stage 1: visit the headers; prefetch overflow arrays and
		// inline-matched build tuples.
		for i := 0; i < n; i++ {
			st := &states[i]
			h := st.hdr
			st.count = h.count
			st.cells = 0
			if h.count == 0 {
				continue
			}
			if h.code0 == st.code {
				st.matches = append(st.matches, h.tuple0)
				j.prefetchTuple(h.tuple0)
			}
			if h.count > 1 {
				st.cells = h.cells
				prefetchT0(unsafe.Pointer(&t.cells[h.cells]))
			}
		}

		// Stage 2: visit the overflow cells; prefetch matched tuples.
		for i := 0; i < n; i++ {
			st := &states[i]
			if st.cells == 0 {
				continue
			}
			for k := uint32(0); k < st.count-1; k++ {
				c := &t.cells[st.cells+k]
				if c.code == st.code {
					st.matches = append(st.matches, c.ref)
					j.prefetchTuple(c.ref)
				}
			}
		}

		// Stage 3: visit the matching build tuples, compare keys, emit.
		for i := 0; i < n; i++ {
			st := &states[i]
			for _, ref := range st.matches {
				j.emit(ref, st.ref, st.key)
			}
		}
	}
}

// buildGroup batches hash-table inserts: prefetch the G headers of a
// group, then perform the G inserts against warm lines. The native build
// needs no busy flags — unlike the simulator, where a group's visits
// interleave, each native insert completes before the next begins; the
// batching only moves the header fetches off the critical path.
func (j *pairJoiner) buildGroup(build []Entry) {
	t := j.t
	g := j.g
	for lo := 0; lo < len(build); lo += g {
		hi := lo + g
		if hi > len(build) {
			hi = len(build)
		}
		for i := lo; i < hi; i++ {
			prefetchT0(unsafe.Pointer(&t.headers[t.bucket(build[i].Code)]))
		}
		for i := lo; i < hi; i++ {
			t.Insert(build[i].Code, build[i].Ref)
		}
	}
}

// --- Software-pipelined prefetching (paper section 5) ---

// nextPow2 returns the smallest power of two >= v.
func nextPow2(v int) int {
	n := 1
	for n < v {
		n <<= 1
	}
	return n
}

// probePipelined combines different stages of different tuples in one
// iteration: iteration it runs stage 0 for tuple it, stage 1 for tuple
// it-D, stage 2 for it-2D, stage 3 for it-3D, so subsequent stages of
// one tuple sit D iterations apart and the prefetch pipeline never
// drains between groups. State lives in a circular array sized to a
// power of two of at least 3D+1 entries (section 5.3).
func (j *pairJoiner) probePipelined(probe []Entry) {
	t := j.t
	d := j.d
	size := nextPow2(3*d + 1)
	mask := size - 1
	states := j.statesFor(size)
	total := len(probe)

	for it := 0; it-3*d < total; it++ {
		// Stage 0 for tuple it: bucket number, prefetch header.
		if it < total {
			e := &probe[it]
			st := &states[it&mask]
			st.key, st.code, st.ref = e.Key, e.Code, e.Ref
			st.hdr = &t.headers[t.bucket(e.Code)]
			st.matches = st.matches[:0]
			prefetchT0(unsafe.Pointer(st.hdr))
		}

		// Stage 1 for tuple it-D: visit header, prefetch cells/tuples.
		if k := it - d; k >= 0 && k < total {
			st := &states[k&mask]
			h := st.hdr
			st.count = h.count
			st.cells = 0
			if h.count != 0 {
				if h.code0 == st.code {
					st.matches = append(st.matches, h.tuple0)
					j.prefetchTuple(h.tuple0)
				}
				if h.count > 1 {
					st.cells = h.cells
					prefetchT0(unsafe.Pointer(&t.cells[h.cells]))
				}
			}
		}

		// Stage 2 for tuple it-2D: visit cells, prefetch matched tuples.
		if k := it - 2*d; k >= 0 && k < total {
			st := &states[k&mask]
			if st.cells != 0 {
				for c := uint32(0); c < st.count-1; c++ {
					cl := &t.cells[st.cells+c]
					if cl.code == st.code {
						st.matches = append(st.matches, cl.ref)
						j.prefetchTuple(cl.ref)
					}
				}
			}
		}

		// Stage 3 for tuple it-3D: visit build tuples, compare, emit.
		if k := it - 3*d; k >= 0 && k < total {
			st := &states[k&mask]
			for _, ref := range st.matches {
				j.emit(ref, st.ref, st.key)
			}
		}
	}
}

// buildPipelined inserts tuple i while prefetching the header tuple i+D
// will visit, keeping D header fetches in flight across the whole build.
func (j *pairJoiner) buildPipelined(build []Entry) {
	t := j.t
	d := j.d
	for i := range build {
		if n := i + d; n < len(build) {
			prefetchT0(unsafe.Pointer(&t.headers[t.bucket(build[n].Code)]))
		}
		t.Insert(build[i].Code, build[i].Ref)
	}
}
