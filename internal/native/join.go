package native

import (
	"encoding/binary"
	"errors"
	"math/bits"
	"unsafe"

	"hashjoin/internal/plan"
	"hashjoin/internal/spill"
)

// pairJoiner joins one build/probe partition pair natively. One lives in
// each morsel worker; the row table and stage-state scratch are recycled
// across pairs and across joins (see Joiner.worker).
type pairJoiner struct {
	data  []byte
	t     *RowTable
	width int // serialized build key+payload bytes per row
	g, d  int

	states []probeState // group/pipeline stage state, reused

	// sink, when set, receives every validated match: the build row's
	// serialized key+payload bytes (valid only for the duration of the
	// call) and the probe tuple address. It lets the probe loops feed a
	// batch pipeline; nil keeps the counting-only fast path.
	sink func(build []byte, probeRef uint64)

	// matched, when non-nil, is the per-batch match bitmask a Prober
	// arms before each ProbeBatch: bit i set means probe tuple i of the
	// batch had at least one validated match. nil on the morsel path.
	matched []uint64

	// spill, when set, is the join's shared out-of-core coordinator: an
	// irreducible over-budget pair goes to disk instead of failing (see
	// spill.go). The entry and page scratch below is recycled across
	// spilled chunks.
	spill       *spillState
	spillBuild  []Entry
	spillProbe  []Entry
	spillPinned []spill.Page

	// codeFreq is the hybrid victim path's code-frequency histogram
	// scratch, reused across victims (see splitHotCodes).
	codeFreq map[uint32]int

	// joinType selects the match semantics (see jointype.go). Inner is
	// the zero value, so untyped call sites keep the fast paths.
	joinType plan.JoinType

	// buildMatched is the right-outer build-row match bitmap for the
	// current table, armed by buildSerial; bits are set atomically so a
	// shared BuildSide's table serves concurrent probers, each with its
	// own bitmap.
	buildMatched []uint64

	// probeMatched/probeBase/deferProbe implement deferred unmatched-
	// probe resolution when the build side arrives in chunks: bit
	// probeBase+idx set means the probe stream's row at that position
	// matched some chunk. See jointype.go.
	probeMatched []uint64
	probeBase    int
	deferProbe   bool

	nOutput int
	keySum  uint64
}

func newPairJoiner() *pairJoiner {
	return &pairJoiner{t: &RowTable{}}
}

// probeState carries one probe tuple's state across the probe stages.
// Unlike the v1 states there is no per-tuple match buffer: the chain
// walk compares keys in-row and emits directly.
type probeState struct {
	key  uint32
	code uint32
	ref  uint64 // probe tuple address, for match emission
	row  uint64 // chain head row offset after stage 1
	slot uint32 // directory slot after stage 0
	idx  int32  // batch-relative index, for the match bitmask
}

// statesFor returns n stage-state slots, reusing the scratch array.
func (j *pairJoiner) statesFor(n int) []probeState {
	if cap(j.states) < n {
		j.states = make([]probeState, n)
	}
	return j.states[:n]
}

// walkChain is the probe's final stage: follow the bucket chain from
// st.row, prefetching the next row one step ahead, filter on the stored
// hash code, and validate by comparing the probe key against the key
// serialized in the row — no storage.Relation access, the win of the
// compact row layout.
func (j *pairJoiner) walkChain(st *probeState) {
	if j.joinType == plan.LeftSemi || j.joinType == plan.LeftAnti {
		j.walkChainSemi(st)
		return
	}
	rows := j.t.rows
	w := uint64(j.width)
	found := false
	for off := st.row; off != 0; {
		next := binary.LittleEndian.Uint64(rows[off:])
		if next != 0 {
			prefetchT0(unsafe.Pointer(&rows[next]))
		}
		if binary.LittleEndian.Uint32(rows[off+rowCodeOff:]) == st.code &&
			binary.LittleEndian.Uint32(rows[off+rowKeyOff:]) == st.key {
			found = true
			j.nOutput++
			j.keySum += uint64(st.key)
			if j.matched != nil {
				j.matched[st.idx>>6] |= 1 << uint(st.idx&63)
			}
			if j.joinType == plan.RightOuter {
				j.markBuildRow(off)
			}
			if j.sink != nil {
				j.sink(rows[off+rowHdrSize:off+rowHdrSize+w], st.ref)
			}
		}
		off = next
	}
	if found {
		if j.deferProbe {
			j.markProbeBit(st)
		}
		return
	}
	if j.joinType == plan.LeftOuter && !j.deferProbe {
		j.nOutput++ // null build key contributes 0 to keySum
		if j.sink != nil {
			j.sink(nil, st.ref)
		}
	}
}

// walkChainSemi is the semi/anti chain walk: it short-circuits on the
// first validated match instead of emitting every one. A semi match
// emits the probe row immediately — under deferred mode the probe bit
// doubles as a cross-chunk "already emitted" guard, so no final pass is
// needed — while anti rows are emitted only once the whole build side
// has been seen (end of chain in memory, finishProbeBits or the spill
// sweep under deferred mode).
func (j *pairJoiner) walkChainSemi(st *probeState) {
	if j.deferProbe && j.probeBit(st) {
		return // resolved by an earlier build chunk
	}
	semi := j.joinType == plan.LeftSemi
	rows := j.t.rows
	for off := st.row; off != 0; {
		next := binary.LittleEndian.Uint64(rows[off:])
		if next != 0 {
			prefetchT0(unsafe.Pointer(&rows[next]))
		}
		if binary.LittleEndian.Uint32(rows[off+rowCodeOff:]) == st.code &&
			binary.LittleEndian.Uint32(rows[off+rowKeyOff:]) == st.key {
			if j.matched != nil {
				j.matched[st.idx>>6] |= 1 << uint(st.idx&63)
			}
			if j.deferProbe {
				j.markProbeBit(st)
			}
			if semi {
				j.nOutput++
				j.keySum += uint64(st.key)
				if j.sink != nil {
					j.sink(nil, st.ref)
				}
			}
			return
		}
		off = next
	}
	if !semi && !j.deferProbe {
		j.nOutput++
		j.keySum += uint64(st.key)
		if j.sink != nil {
			j.sink(nil, st.ref)
		}
	}
}

// maxRepartitionDepth bounds recursive re-partitioning of an oversized
// pair. Each level multiplies the fan-out by at least 2, so 8 levels on
// top of the initial fan-out split a pair at least 256-fold; a pair
// still over budget after that is dominated by duplicate hash codes that
// no amount of radix splitting can separate.
const maxRepartitionDepth = 8

// joinPairBudget joins one partition pair under a memory budget: a pair
// whose estimated footprint fits cfg.MemBudget is joined directly; an
// oversized pair is radix-split on the hash bits above shift — the GRACE
// degradation the paper's partition phase applies when a partition
// exceeds memory — and each sub-pair joined recursively. It returns the
// deepest recursion level used, or a *BudgetError when the depth bound
// or the hash bits run out before the pair fits.
func (j *pairJoiner) joinPairBudget(build, probe []Entry, shift uint, cfg Config, depth int) (int, error) {
	if len(build) == 0 || len(probe) == 0 {
		j.emitUnmatchedPair(build, probe)
		return depth, nil
	}
	need := pairFootprint(len(build), j.width)
	if need <= cfg.MemBudget {
		j.joinPair(build, probe, shift, cfg.Scheme)
		return depth, nil
	}
	bitsLeft := 32 - int(shift)
	if depth >= maxRepartitionDepth || bitsLeft <= 0 {
		// Irreducible: duplicate hash codes no radix split can separate.
		// The final tier of the ladder joins the pair out of core in
		// budget-sized build chunks; only Config.NoSpill (or a schema
		// that cannot round-trip through slotted pages) still fails.
		switch {
		case j.spill == nil:
			return depth, &BudgetError{Budget: cfg.MemBudget, Need: need, Depth: depth}
		case j.spill.available():
			if cfg.Hybrid {
				return depth, j.joinPairSpillHybrid(build, probe, shift, cfg)
			}
			return depth, j.joinPairSpill(build, probe, shift, cfg)
		case bitsLeft > 0:
			// Every spill directory is down but hash bits remain: degrade
			// back *up* the ladder and keep re-partitioning in memory past
			// the depth cap. The 32 hash bits bound this, so a pair that
			// stays irreducible all the way down still sheds below.
		default:
			return depth, j.spill.unavailable()
		}
	}
	sub := subFanoutFor(need, cfg.MemBudget, bitsLeft)
	subBits := uint(bits.TrailingZeros(uint(sub)))
	bsub := scatterEntries(build, shift, sub)
	psub := scatterEntries(probe, shift, sub)
	maxDepth := depth
	for i := 0; i < sub; i++ {
		d, err := j.joinPairBudget(bsub[i], psub[i], shift+subBits, cfg, depth+1)
		if d > maxDepth {
			maxDepth = d
		}
		if err != nil {
			// Report the deepest level this subtree reached, not just the
			// failing sub-call's depth: sibling sub-pairs joined before the
			// failure may have recursed deeper, and both the returned depth
			// and a propagating *BudgetError must reflect the join's actual
			// maximum recursion.
			var be *BudgetError
			if errors.As(err, &be) && be.Depth < maxDepth {
				be.Depth = maxDepth
			}
			return maxDepth, err
		}
	}
	return maxDepth, nil
}

// subFanoutFor picks the smallest power-of-two sub-fan-out (at least 2)
// that brings an average sub-pair of a need-byte pair under budget,
// capped at 256 and by the hash bits still unconsumed. The comparison is
// written in divide form — ceil(need/sub) > budget — because the
// multiplied form need > budget*sub overflows int for budgets above
// MaxInt/sub and spuriously inflates the fan-out.
func subFanoutFor(need, budget, bitsLeft int) int {
	sub := 2
	for sub < 256 && overBudget(need, budget, sub) {
		sub <<= 1
	}
	if maxSub := 1 << uint(min(bitsLeft, 8)); sub > maxSub {
		sub = maxSub
	}
	return sub
}

// overBudget reports whether need bytes split parts ways still exceeds
// budget bytes per part: ceil(need/parts) > budget, computed without the
// overflowing product budget*parts.
func overBudget(need, budget, parts int) bool {
	q := need / parts
	if need%parts != 0 {
		q++
	}
	return q > budget
}

// scatterEntries radix-partitions entries on fanout's worth of hash-code
// bits starting at shift: counting pass, prefix sum, scatter. The
// sub-partition buffers live on the Go heap, not the arena — this is the
// oversized-pair slow path, and its scratch must not count against the
// very budget it is trying to meet.
func scatterEntries(entries []Entry, shift uint, fanout int) [][]Entry {
	mask := uint32(fanout - 1)
	hist := make([]int, fanout)
	for i := range entries {
		hist[(entries[i].Code>>shift)&mask]++
	}
	offs := make([]int, fanout+1)
	sum := 0
	for i, h := range hist {
		offs[i] = sum
		sum += h
	}
	offs[fanout] = sum
	out := make([]Entry, len(entries))
	cursor := hist
	copy(cursor, offs[:fanout])
	for i := range entries {
		d := (entries[i].Code >> shift) & mask
		out[cursor[d]] = entries[i]
		cursor[d]++
	}
	parts := make([][]Entry, fanout)
	for i := 0; i < fanout; i++ {
		parts[i] = out[offs[i]:offs[i+1]]
	}
	return parts
}

// joinPair builds a row table over build and probes it with probe.
// shift is the partitioner's radix width, so bucket numbers use
// untouched bits.
func (j *pairJoiner) joinPair(build, probe []Entry, shift uint, scheme Scheme) {
	if len(build) == 0 || len(probe) == 0 {
		j.emitUnmatchedPair(build, probe)
		return
	}
	j.buildSerial(build, shift, scheme)
	j.probeFor(probe, scheme)
	if j.joinType == plan.RightOuter {
		j.sweepUnmatchedBuild()
	}
}

// buildSerial resets the worker's table and serializes + inserts build
// with the scheme's loop restructuring. Split out of joinPair because
// the spill tier builds over chunks of one partition and probes each
// chunk with the whole probe stream.
func (j *pairJoiner) buildSerial(build []Entry, shift uint, scheme Scheme) {
	j.t.Reset(len(build), j.width, shift)
	j.t.BuildSerial(j.data, build, scheme, j.g, j.d)
	if j.joinType == plan.RightOuter {
		j.armBuildMatched(len(build))
	}
}

// probeFor probes the current table with the scheme's restructuring.
func (j *pairJoiner) probeFor(probe []Entry, scheme Scheme) {
	if len(probe) == 0 {
		return
	}
	switch scheme {
	case Group:
		j.probeGroup(probe)
	case Pipelined:
		j.probePipelined(probe)
	default:
		j.probeBaseline(probe)
	}
}

// --- Baseline ---

// probeBaseline walks each probe tuple's full dependence chain — the
// directory slot, then every row on the chain — before touching the
// next tuple. Every step can miss, and the misses serialize.
func (j *pairJoiner) probeBaseline(probe []Entry) {
	t := j.t
	var st probeState
	for i := range probe {
		e := &probe[i]
		st.key, st.code, st.ref, st.idx = e.Key, e.Code, e.Ref, int32(i)
		st.row = t.dir[t.bucket(e.Code)]
		j.walkChain(&st)
	}
}

// --- Group prefetching (paper section 4) ---

// probeGroup strip-mines the probe loop into G-tuple groups processed
// in stages; each stage performs one dependent reference per tuple and
// prefetches the next stage's references, so one tuple's cache misses
// overlap with the computation and misses of the other G-1. The row
// layout needs one stage fewer than v1: chain rows are self-contained,
// so there is no final "visit the build tuple" stage.
func (j *pairJoiner) probeGroup(probe []Entry) {
	t := j.t
	g := j.g
	states := j.statesFor(g)
	// Outer/semi/anti probes must observe unmatched tuples too, so an
	// empty chain head cannot skip the walk for those types.
	all := j.needsProbeBits()

	for lo := 0; lo < len(probe); lo += g {
		hi := lo + g
		if hi > len(probe) {
			hi = len(probe)
		}
		n := hi - lo

		// Stage 0: compute directory slots; prefetch them.
		for i := 0; i < n; i++ {
			e := &probe[lo+i]
			st := &states[i]
			st.key, st.code, st.ref, st.idx = e.Key, e.Code, e.Ref, int32(lo+i)
			st.slot = t.bucket(e.Code)
			prefetchT0(unsafe.Pointer(&t.dir[st.slot]))
		}

		// Stage 1: load chain heads; prefetch the first row of each.
		for i := 0; i < n; i++ {
			st := &states[i]
			st.row = t.dir[st.slot]
			if st.row != 0 {
				prefetchT0(unsafe.Pointer(&t.rows[st.row]))
			}
		}

		// Stage 2: walk chains, compare keys in-row, emit.
		for i := 0; i < n; i++ {
			if states[i].row != 0 || all {
				j.walkChain(&states[i])
			}
		}
	}
}

// --- Software-pipelined prefetching (paper section 5) ---

// nextPow2 returns the smallest power of two >= v.
func nextPow2(v int) int {
	n := 1
	for n < v {
		n <<= 1
	}
	return n
}

// probePipelined combines different stages of different tuples in one
// iteration: iteration it runs stage 0 for tuple it, stage 1 for tuple
// it-D, stage 2 for it-2D, so subsequent stages of one tuple sit D
// iterations apart and the prefetch pipeline never drains between
// groups. State lives in a circular array sized to a power of two of at
// least 2D+1 entries (section 5.3; the row layout has three stages, not
// four).
func (j *pairJoiner) probePipelined(probe []Entry) {
	t := j.t
	d := j.d
	size := nextPow2(2*d + 1)
	mask := size - 1
	states := j.statesFor(size)
	total := len(probe)
	all := j.needsProbeBits() // see probeGroup

	for it := 0; it-2*d < total; it++ {
		// Stage 0 for tuple it: directory slot, prefetch it.
		if it < total {
			e := &probe[it]
			st := &states[it&mask]
			st.key, st.code, st.ref, st.idx = e.Key, e.Code, e.Ref, int32(it)
			st.slot = t.bucket(e.Code)
			prefetchT0(unsafe.Pointer(&t.dir[st.slot]))
		}

		// Stage 1 for tuple it-D: chain head, prefetch its row.
		if k := it - d; k >= 0 && k < total {
			st := &states[k&mask]
			st.row = t.dir[st.slot]
			if st.row != 0 {
				prefetchT0(unsafe.Pointer(&t.rows[st.row]))
			}
		}

		// Stage 2 for tuple it-2D: walk the chain, compare in-row, emit.
		if k := it - 2*d; k >= 0 && k < total {
			st := &states[k&mask]
			if st.row != 0 || all {
				j.walkChain(st)
			}
		}
	}
}
