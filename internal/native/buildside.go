package native

import (
	"runtime"

	"hashjoin/internal/plan"
)

// BuildSide is a finished, immutable row table packaged for reuse: build
// once, probe from any number of goroutines. NewProber hands out
// independent probe scratch over the shared table, which nothing
// mutates after BuildRows returns — that immutability is the whole
// contract, and what lets the multi-tenant service keep one resident
// build side per pair and serve N concurrent queries without
// rebuilding.
//
// The table's memory lives on the Go heap, not the query's arena
// window, precisely so the handle can outlive the query that built it
// (arena windows are reclaimed at release; see internal/sched). Bytes
// reports the resident footprint for cache accounting.
type BuildSide struct {
	t *RowTable
}

// BuildConfig tunes a concurrent build. The zero value builds serially
// on the calling goroutine with the Group scheme's defaults.
type BuildConfig struct {
	// Scheme selects the build loop's prefetch restructuring; G and D
	// are its parameters (0 = native defaults).
	Scheme Scheme
	G, D   int

	// Workers bounds the concurrent build slots; <1 means GOMAXPROCS.
	Workers int

	// Pool, when non-nil, runs the build's morsels on a shared worker
	// pool (the multi-tenant scheduler); nil uses dedicated goroutines.
	// Tenant and Weight identify the owning query for a shared Pool.
	Pool   Pool
	Tenant string
	Weight int
}

// BuildRows builds a row table over entries concurrently, in two
// barrier-separated phases over the same contiguous ranges:
//
//  1. Serialize: each morsel materializes its rows (disjoint slab
//     bytes, no coordination).
//  2. Publish: each morsel links its rows into the shared directory
//     with a CAS on the bucket head.
//
// The barrier between the phases (Pool.Do returns only after every
// in-flight morsel finishes) is what makes phase 2's plain reads of
// phase 1's writes safe. Chain order within a bucket depends on CAS
// timing, so the result equals a serial build as a multiset of rows per
// bucket — the join-output contract — not byte-for-byte.
//
// data must be the arena backing slice the entries' Refs point into;
// width the build schema's fixed tuple width (>= 4: the leading uint32
// join key). On error (cancellation through a shared pool, pool
// shutdown) the partial table is abandoned and nil is returned.
func BuildRows(data []byte, entries []Entry, width int, cfg BuildConfig) (*BuildSide, error) {
	scfg := Config{Scheme: cfg.Scheme, G: cfg.G, D: cfg.D}.normalized()
	workers := cfg.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := len(entries)
	nMorsels := workers
	if nMorsels > n {
		nMorsels = n
	}
	if nMorsels < 1 {
		nMorsels = 1
	}
	chunk := (n + nMorsels - 1) / nMorsels
	rangeOf := func(i int) (int, int) {
		lo := i * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		return lo, hi
	}

	t := &RowTable{}
	t.Reset(n, width, 0)

	var pool Pool = localPool{}
	if cfg.Pool != nil {
		pool = cfg.Pool
	}
	serialize := func(_, i int) error {
		lo, hi := rangeOf(i)
		t.SerializeRange(data, entries, lo, hi)
		return nil
	}
	publish := func(_, i int) error {
		lo, hi := rangeOf(i)
		t.InsertRange(lo, hi, scfg.Scheme, scfg.G, scfg.D)
		return nil
	}
	for _, run := range []func(int, int) error{serialize, publish} {
		err := pool.Do(&MorselJob{
			Tenant: cfg.Tenant,
			Weight: cfg.Weight,
			N:      nMorsels,
			Slots:  workers,
			Run:    run,
		})
		if err != nil {
			return nil, err
		}
	}
	return &BuildSide{t: t}, nil
}

// NewProber returns fresh probe scratch over the shared table. The
// scheme's probe restructuring and G/D need not match the ones the
// table was built with. Each Prober is single-goroutine; create one per
// concurrent probe stream.
func (b *BuildSide) NewProber(scheme Scheme, g, d int) *Prober {
	return b.NewTypedProber(plan.Inner, scheme, g, d)
}

// NewTypedProber is NewProber with join-type semantics (see the
// streaming NewTypedProber). Each Prober owns its private match bitmaps
// — the shared table itself is never written — so N concurrent typed
// probe streams over one BuildSide stay independent: a right-outer
// stream's build-row bits, for example, cannot leak into a sibling
// semi-join stream's short-circuit decisions.
func (b *BuildSide) NewTypedProber(jt plan.JoinType, scheme Scheme, g, d int) *Prober {
	cfg := Config{Scheme: scheme, G: g, D: d}.normalized()
	j := newPairJoiner()
	j.t = b.t
	j.width = b.t.Width()
	j.g, j.d = cfg.G, cfg.D
	j.joinType = jt
	if jt == plan.RightOuter {
		j.armBuildMatched(b.t.NRows())
	}
	return &Prober{j: j, scheme: scheme}
}

// NRows returns the build tuple count.
func (b *BuildSide) NRows() int { return b.t.NRows() }

// Width returns the serialized key+payload bytes per row.
func (b *BuildSide) Width() int { return b.t.Width() }

// Bytes returns the table's resident heap footprint, for cache
// accounting.
func (b *BuildSide) Bytes() int { return b.t.Bytes() }
