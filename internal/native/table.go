package native

import "math/bits"

// The native hash table keeps the paper's Figure 2 shape — an array of
// bucket headers, each embedding its first hash cell inline and pointing
// at a dynamically grown overflow array — but lays it out for real
// cache-line locality:
//
//   - headers are 32-byte structs, two per 64-byte line, in one flat
//     slice, so a single prefetch of the header address covers the
//     count, the inline cell, and the overflow pointer;
//   - overflow cells live in one shared slab addressed by index (not
//     pointer), so per-bucket arrays stay contiguous and the slab can be
//     grown with append without invalidating references.
//
// Bucket numbers come from the hash code's bits *above* the radix bits
// consumed by the partitioner, so partitioning does not starve the
// table's index distribution.

type header struct {
	count  uint32 // cells in the bucket (inline cell included)
	code0  uint32 // inline cell: hash code
	tuple0 uint64 // inline cell: build tuple address
	cells  uint32 // slab index of the overflow array; 0 = none
	cap_   uint32 // capacity of the overflow array, in cells
	_      uint64 // pad to 32 bytes: two headers per cache line
}

type cell struct {
	code uint32
	_    uint32
	ref  uint64 // build tuple address
}

const (
	headerSize = 32
	cellSize   = 16

	// initialCellCap matches the simulator's hash.InitialCellCap.
	initialCellCap = 4
)

// Table is the native flat hash table.
type Table struct {
	headers []header
	cells   []cell // shared overflow slab; index 0 is a reserved sentinel
	shift   uint   // radix bits consumed by the partitioner
	mask    uint32 // len(headers)-1
}

// NewTable sizes a table for nTuples build tuples: the next power of two
// buckets (load factor <= 1), indexed by hash code bits above shift.
func NewTable(nTuples int, shift uint) *Table {
	t := &Table{}
	t.Reset(nTuples, shift)
	return t
}

// Reset re-sizes and clears the table for reuse across partition pairs,
// keeping allocations when the new partition is no larger.
func (t *Table) Reset(nTuples int, shift uint) {
	if nTuples < 1 {
		nTuples = 1
	}
	nb := 1 << uint(bits.Len(uint(nTuples-1)))
	if nb <= cap(t.headers) {
		t.headers = t.headers[:nb]
		clear(t.headers)
	} else {
		t.headers = make([]header, nb)
	}
	if cap(t.cells) > 0 {
		t.cells = t.cells[:1]
	} else {
		t.cells = make([]cell, 1, 1+nTuples/4)
	}
	t.shift = shift
	t.mask = uint32(nb - 1)
}

// NBuckets returns the bucket count.
func (t *Table) NBuckets() int { return len(t.headers) }

// bucket maps a hash code to its bucket index.
func (t *Table) bucket(code uint32) uint32 { return (code >> t.shift) & t.mask }

// Insert adds (code, ref) to the table. The caller passes the build
// tuple's arena address; probes re-read the key through it.
func (t *Table) Insert(code uint32, ref uint64) {
	h := &t.headers[t.bucket(code)]
	if h.count == 0 {
		h.code0 = code
		h.tuple0 = ref
		h.count = 1
		return
	}
	over := h.count - 1
	if h.cells == 0 || over == h.cap_ {
		t.grow(h, over)
	}
	t.cells[h.cells+over] = cell{code: code, ref: ref}
	h.count++
}

// grow allocates or doubles a bucket's overflow array inside the slab,
// copying the existing cells.
func (t *Table) grow(h *header, over uint32) {
	newCap := uint32(initialCellCap)
	if h.cap_ > 0 {
		newCap = h.cap_ * 2
	}
	idx := uint32(len(t.cells))
	t.cells = append(t.cells, make([]cell, newCap)...)
	if h.cells != 0 && over > 0 {
		copy(t.cells[idx:idx+over], t.cells[h.cells:h.cells+over])
	}
	h.cells = idx
	h.cap_ = newCap
}

// Lookup calls fn for every build tuple address in code's bucket whose
// cell code equals code. Exported for tests and the fuzz oracle; the
// measured probe loops in join.go inline this walk.
func (t *Table) Lookup(code uint32, fn func(ref uint64)) {
	h := &t.headers[t.bucket(code)]
	if h.count == 0 {
		return
	}
	if h.code0 == code {
		fn(h.tuple0)
	}
	for i := uint32(0); i < h.count-1; i++ {
		c := &t.cells[h.cells+i]
		if c.code == code {
			fn(c.ref)
		}
	}
}

// TotalCells sums all bucket counts; for invariant checks.
func (t *Table) TotalCells() int {
	total := 0
	for i := range t.headers {
		total += int(t.headers[i].count)
	}
	return total
}
