package native

import "math/bits"

// The native hash table keeps the paper's Figure 2 shape — an array of
// bucket headers, each embedding its first hash cell inline and pointing
// at a dynamically grown overflow array — but lays it out for real
// cache-line locality:
//
//   - headers are 32-byte structs, two per 64-byte line, in one flat
//     slice, so a single prefetch of the header address covers the
//     count, the inline cell, and the overflow pointer;
//   - overflow cells live in one shared slab addressed by index (not
//     pointer), so per-bucket arrays stay contiguous and the slab can be
//     grown with append without invalidating references.
//
// Bucket numbers come from the hash code's bits *above* the radix bits
// consumed by the partitioner, so partitioning does not starve the
// table's index distribution.

type header struct {
	count  uint32 // cells in the bucket (inline cell included)
	code0  uint32 // inline cell: hash code
	tuple0 uint64 // inline cell: build tuple address
	cells  uint32 // slab index of the overflow array; 0 = none
	cap_   uint32 // capacity of the overflow array, in cells
	_      uint64 // pad to 32 bytes: two headers per cache line
}

type cell struct {
	code uint32
	_    uint32
	ref  uint64 // build tuple address
}

const (
	headerSize = 32
	cellSize   = 16

	// initialCellCap matches the simulator's hash.InitialCellCap.
	initialCellCap = 4
)

// Table is the v1 native flat hash table. The join path now runs on
// RowTable (compact row storage); Table remains the reference
// implementation the parity and fuzz suites check the row layout
// against.
type Table struct {
	headers []header
	cells   []cell // shared overflow slab; index 0 is a reserved sentinel
	shift   uint   // radix bits consumed by the partitioner
	mask    uint32 // len(headers)-1

	// free heads one recycling list of abandoned overflow regions per
	// power-of-two size class (free[k] holds regions of 1<<k cells;
	// 0 = empty). Doubling a bucket used to abandon its old region in
	// the slab permanently — a worst-case ~half of the slab wasted;
	// recycled regions keep the waste bounded (see SlabUtilization).
	// A freed region's first cell's ref field links to the next region.
	free [32]uint32
}

// NewTable sizes a table for nTuples build tuples: the next power of two
// buckets (load factor <= 1), indexed by hash code bits above shift.
func NewTable(nTuples int, shift uint) *Table {
	t := &Table{}
	t.Reset(nTuples, shift)
	return t
}

// Reset shrink thresholds: capacity retained across pairs is released
// once it exceeds tableShrinkFactor times the new need and the floor —
// one skewed pair must not pin its peak allocation for the rest of the
// worker's life.
const (
	tableShrinkFactor = 4
	tableHeaderFloor  = 1 << 9  // headers
	tableCellFloor    = 1 << 10 // slab cells
)

// Reset re-sizes and clears the table for reuse across partition pairs,
// keeping allocations when the new partition is of comparable size and
// releasing them when the capacity is far above the new need.
func (t *Table) Reset(nTuples int, shift uint) {
	if nTuples < 1 {
		nTuples = 1
	}
	nb := 1 << uint(bits.Len(uint(nTuples-1)))
	if nb <= cap(t.headers) && cap(t.headers) <= max(tableShrinkFactor*nb, tableHeaderFloor) {
		t.headers = t.headers[:nb]
		clear(t.headers)
	} else {
		t.headers = make([]header, nb)
	}
	cellCap := 1 + nTuples/4
	if cap(t.cells) > 0 && cap(t.cells) <= max(tableShrinkFactor*cellCap, tableCellFloor) {
		t.cells = t.cells[:1]
	} else {
		t.cells = make([]cell, 1, cellCap)
	}
	t.free = [32]uint32{}
	t.shift = shift
	t.mask = uint32(nb - 1)
}

// MemFootprint returns the bytes the table currently pins: header array
// plus the overflow slab's full capacity. The accounting tests use it
// to prove Reset releases a skewed pair's peak.
func (t *Table) MemFootprint() int {
	return cap(t.headers)*headerSize + cap(t.cells)*cellSize
}

// NBuckets returns the bucket count.
func (t *Table) NBuckets() int { return len(t.headers) }

// bucket maps a hash code to its bucket index.
func (t *Table) bucket(code uint32) uint32 { return (code >> t.shift) & t.mask }

// Insert adds (code, ref) to the table. The caller passes the build
// tuple's arena address; probes re-read the key through it.
func (t *Table) Insert(code uint32, ref uint64) {
	h := &t.headers[t.bucket(code)]
	if h.count == 0 {
		h.code0 = code
		h.tuple0 = ref
		h.count = 1
		return
	}
	over := h.count - 1
	if h.cells == 0 || over == h.cap_ {
		t.grow(h, over)
	}
	t.cells[h.cells+over] = cell{code: code, ref: ref}
	h.count++
}

// grow allocates or doubles a bucket's overflow array inside the slab,
// copying the existing cells. The new region is recycled from the free
// list when a region of that size class was abandoned earlier, and the
// outgrown region is pushed onto its own class's list — so slab waste
// stays bounded instead of accumulating one dead region per doubling.
func (t *Table) grow(h *header, over uint32) {
	newCap := uint32(initialCellCap)
	if h.cap_ > 0 {
		newCap = h.cap_ * 2
	}
	class := bits.TrailingZeros32(newCap)
	idx := t.free[class]
	if idx != 0 {
		t.free[class] = uint32(t.cells[idx].ref)
	} else {
		idx = uint32(len(t.cells))
		t.cells = append(t.cells, make([]cell, newCap)...)
	}
	if h.cells != 0 && over > 0 {
		copy(t.cells[idx:idx+over], t.cells[h.cells:h.cells+over])
	}
	if h.cells != 0 {
		old := bits.TrailingZeros32(h.cap_)
		t.cells[h.cells].ref = uint64(t.free[old])
		t.free[old] = h.cells
	}
	h.cells = idx
	h.cap_ = newCap
}

// SlabUtilization reports the fraction of allocated overflow-slab cells
// holding live data: live overflow cells (bucket counts beyond the
// inline cell) over the slab's length. With free-list recycling the
// worst case is bounded (each bucket wastes at most its current region,
// which is at most ~2x its live cells, plus at most one parked region
// per size class); before recycling, repeated doublings could strand an
// unbounded pile of dead regions. 1.0 when no overflow was allocated.
func (t *Table) SlabUtilization() float64 {
	allocated := len(t.cells) - 1
	if allocated <= 0 {
		return 1.0
	}
	live := 0
	for i := range t.headers {
		if c := int(t.headers[i].count); c > 1 {
			live += c - 1
		}
	}
	return float64(live) / float64(allocated)
}

// Lookup calls fn for every build tuple address in code's bucket whose
// cell code equals code. Exported for tests and the fuzz oracle; the
// measured probe loops in join.go inline this walk.
func (t *Table) Lookup(code uint32, fn func(ref uint64)) {
	h := &t.headers[t.bucket(code)]
	if h.count == 0 {
		return
	}
	if h.code0 == code {
		fn(h.tuple0)
	}
	for i := uint32(0); i < h.count-1; i++ {
		c := &t.cells[h.cells+i]
		if c.code == code {
			fn(c.ref)
		}
	}
}

// TotalCells sums all bucket counts; for invariant checks.
func (t *Table) TotalCells() int {
	total := 0
	for i := range t.headers {
		total += int(t.headers[i].count)
	}
	return total
}
