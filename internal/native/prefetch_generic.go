//go:build !amd64 || purego

package native

import "unsafe"

// HavePrefetch reports whether prefetchT0 issues a real prefetch
// instruction on this build.
const HavePrefetch = false

// prefetchT0 is a no-op on platforms without an assembly stub (or under
// the purego tag). The group and pipelined loops still help there: each
// stage issues a burst of independent loads, which the out-of-order core
// overlaps better than the baseline's per-tuple dependent chain.
func prefetchT0(p unsafe.Pointer) { _ = p }
