package native

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"hashjoin/internal/arena"
	"hashjoin/internal/storage"
	"hashjoin/internal/workload"
)

// expected computes a workload's ground truth for direct comparison.
func run(t *testing.T, spec workload.Spec, cfg Config) (Result, *workload.Pair) {
	t.Helper()
	a := arena.New(workload.ArenaBytesFor(spec))
	pair := workload.Generate(a, spec)
	r, err := Join(pair.Build, pair.Probe, cfg)
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	return r, pair
}

func TestJoinAllSchemes(t *testing.T) {
	spec := workload.Spec{NBuild: 5000, TupleSize: 36, MatchesPerBuild: 2, PctMatched: 90, Seed: 3}
	for _, scheme := range []Scheme{Baseline, Group, Pipelined} {
		for _, fanout := range []int{1, 8} {
			t.Run(fmt.Sprintf("%v/fanout%d", scheme, fanout), func(t *testing.T) {
				r, pair := run(t, spec, Config{Scheme: scheme, Fanout: fanout, Workers: 2})
				if r.NOutput != pair.ExpectedMatches {
					t.Fatalf("NOutput = %d, want %d", r.NOutput, pair.ExpectedMatches)
				}
				if r.KeySum != pair.KeySum {
					t.Fatalf("KeySum = %d, want %d", r.KeySum, pair.KeySum)
				}
			})
		}
	}
}

func TestJoinSkewed(t *testing.T) {
	// Repeated build keys grow bucket chains, exercising the overflow
	// slab on every scheme.
	spec := workload.Spec{NBuild: 4000, TupleSize: 20, MatchesPerBuild: 1, PctMatched: 100, Seed: 9, Skew: 16}
	for _, scheme := range []Scheme{Baseline, Group, Pipelined} {
		t.Run(scheme.String(), func(t *testing.T) {
			r, pair := run(t, spec, Config{Scheme: scheme})
			if r.NOutput != pair.ExpectedMatches || r.KeySum != pair.KeySum {
				t.Fatalf("got (%d, %d), want (%d, %d)",
					r.NOutput, r.KeySum, pair.ExpectedMatches, pair.KeySum)
			}
		})
	}
}

func TestJoinTinyAndEmpty(t *testing.T) {
	// Degenerate sizes stress the pipelined prologue/epilogue (inputs
	// shorter than 3D) and empty-partition skipping.
	for _, n := range []int{0, 1, 2, 3, 7} {
		for _, scheme := range []Scheme{Baseline, Group, Pipelined} {
			t.Run(fmt.Sprintf("n%d/%v", n, scheme), func(t *testing.T) {
				spec := workload.Spec{NBuild: n, NProbe: max(2*n, 1), TupleSize: 16, MatchesPerBuild: 2, Seed: 1}
				if n == 0 {
					// workload.Generate requires NBuild >= 1; make an
					// empty build relation by hand instead.
					a := arena.New(4 << 20)
					p := workload.Generate(a, workload.Spec{NBuild: 1, NProbe: 2, TupleSize: 16, Seed: 1})
					empty := storage.NewRelation(a, p.Build.Schema, p.Build.PageSize)
					r, err := Join(empty, p.Probe, Config{Scheme: scheme})
					if err != nil {
						t.Fatalf("Join: %v", err)
					}
					if r.NOutput != 0 || r.KeySum != 0 {
						t.Fatalf("empty build produced output: %+v", r)
					}
					return
				}
				r, pair := run(t, spec, Config{Scheme: scheme, G: 5, D: 3})
				if r.NOutput != pair.ExpectedMatches || r.KeySum != pair.KeySum {
					t.Fatalf("got (%d, %d), want (%d, %d)",
						r.NOutput, r.KeySum, pair.ExpectedMatches, pair.KeySum)
				}
			})
		}
	}
}

func TestMorselWorkersDeterministic(t *testing.T) {
	// The same workload must produce identical results at every worker
	// count: claim order is nondeterministic, the sums are not.
	spec := workload.Spec{NBuild: 20000, TupleSize: 24, MatchesPerBuild: 2, PctMatched: 80, Seed: 5}
	a := arena.New(workload.ArenaBytesFor(spec))
	pair := workload.Generate(a, spec)
	for _, workers := range []int{1, 2, 4, 16} {
		r, err := Join(pair.Build, pair.Probe, Config{Scheme: Group, Fanout: 32, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if r.NOutput != pair.ExpectedMatches || r.KeySum != pair.KeySum {
			t.Fatalf("workers=%d: got (%d, %d), want (%d, %d)",
				workers, r.NOutput, r.KeySum, pair.ExpectedMatches, pair.KeySum)
		}
	}
}

func TestPartitionPreservesEntries(t *testing.T) {
	spec := workload.Spec{NBuild: 3000, TupleSize: 16, MatchesPerBuild: 1, Seed: 2}
	a := arena.New(workload.ArenaBytesFor(spec))
	pair := workload.Generate(a, spec)
	data := a.Data()

	flat := flatten(data, pair.Build, nil)
	if len(flat) != pair.Build.NTuples {
		t.Fatalf("flatten produced %d entries, want %d", len(flat), pair.Build.NTuples)
	}

	p := new(partitions)
	p.fill(data, pair.Build, 16)
	if got := len(p.entries); got != len(flat) {
		t.Fatalf("partitioning kept %d entries, want %d", got, len(flat))
	}
	// Every entry must land in the partition its code selects, and the
	// multiset of keys must survive the scatter.
	var flatSum, partSum uint64
	for _, e := range flat {
		flatSum += uint64(e.Key)
	}
	for i := 0; i < p.fanout(); i++ {
		for _, e := range p.part(i) {
			if int(e.Code&uint32(p.fanout()-1)) != i {
				t.Fatalf("entry with code %#x in partition %d", e.Code, i)
			}
			partSum += uint64(e.Key)
		}
	}
	if flatSum != partSum {
		t.Fatalf("key sum changed across partitioning: %d vs %d", flatSum, partSum)
	}
}

func TestTableInsertLookup(t *testing.T) {
	tbl := NewTable(64, 0)
	type kv struct {
		code uint32
		ref  uint64
	}
	oracle := map[uint32][]uint64{}
	var items []kv
	// Deliberate collisions: few distinct codes, many refs.
	for i := 0; i < 500; i++ {
		c := uint32(i % 17 * 0x9E3779B9)
		items = append(items, kv{c, uint64(arena.Base) + uint64(i)*8})
	}
	for _, it := range items {
		tbl.Insert(it.code, it.ref)
		oracle[it.code] = append(oracle[it.code], it.ref)
	}
	if got, want := tbl.TotalCells(), len(items); got != want {
		t.Fatalf("TotalCells = %d, want %d", got, want)
	}
	for code, want := range oracle {
		var got []uint64
		tbl.Lookup(code, func(ref uint64) { got = append(got, ref) })
		if len(got) < len(want) {
			t.Fatalf("code %#x: %d refs, want >= %d", code, len(got), len(want))
		}
		// Hash codes are only a filter, so Lookup may yield extra refs
		// from colliding codes; every expected ref must be present.
		seen := map[uint64]bool{}
		for _, r := range got {
			seen[r] = true
		}
		for _, r := range want {
			if !seen[r] {
				t.Fatalf("code %#x: missing ref %#x", code, r)
			}
		}
	}
}

func TestTableResetReuse(t *testing.T) {
	tbl := NewTable(1024, 0)
	for i := 0; i < 2000; i++ {
		tbl.Insert(uint32(i)*2654435761, uint64(arena.Base)+uint64(i))
	}
	tbl.Reset(16, 2)
	if got := tbl.TotalCells(); got != 0 {
		t.Fatalf("reset table has %d cells", got)
	}
	tbl.Insert(0xFF00, uint64(arena.Base))
	found := 0
	tbl.Lookup(0xFF00, func(uint64) { found++ })
	if found != 1 {
		t.Fatalf("lookup after reset found %d", found)
	}
}

func TestBudgetRecursionParity(t *testing.T) {
	// A budget far below the workload's footprint at a forced small
	// fan-out must trigger recursive re-partitioning, and the result must
	// be byte-identical to the unbudgeted run.
	spec := workload.Spec{NBuild: 30000, TupleSize: 24, MatchesPerBuild: 2, PctMatched: 90, Seed: 7}
	a := arena.New(workload.ArenaBytesFor(spec))
	pair := workload.Generate(a, spec)

	want, err := Join(pair.Build, pair.Probe, Config{Scheme: Group, Fanout: 1})
	if err != nil {
		t.Fatalf("unbudgeted Join: %v", err)
	}
	if want.RecursionDepth != 0 {
		t.Fatalf("unbudgeted join recursed to depth %d", want.RecursionDepth)
	}

	// footprint(30000) ≈ 1.7 MB; a 256 KB budget forces ~3 levels of
	// splitting at sub-fanout 2..8 per level.
	for _, workers := range []int{1, 4} {
		got, err := Join(pair.Build, pair.Probe,
			Config{Scheme: Group, Fanout: 1, MemBudget: 256 << 10, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: budgeted Join: %v", workers, err)
		}
		if got.RecursionDepth < 1 {
			t.Fatalf("workers=%d: budget %d did not recurse (depth %d)", workers, 256<<10, got.RecursionDepth)
		}
		if got.NOutput != want.NOutput || got.KeySum != want.KeySum {
			t.Fatalf("workers=%d: budgeted join got (%d, %d), want (%d, %d)",
				workers, got.NOutput, got.KeySum, want.NOutput, want.KeySum)
		}
	}
}

func TestBudgetInfeasibleReturnsError(t *testing.T) {
	// Maximum skew: every build tuple shares one key, hence one hash
	// code. No radix split separates identical codes, so with the spill
	// tier disabled an undersized budget must surface a *BudgetError —
	// not a panic, not a hang. (With spilling enabled the same join
	// completes out of core; see spill_test.go.)
	spec := workload.Spec{NBuild: 5000, TupleSize: 20, MatchesPerBuild: 1, PctMatched: 100, Seed: 11, Skew: 5000}
	a := arena.New(workload.ArenaBytesFor(spec))
	pair := workload.Generate(a, spec)
	before := runtime.NumGoroutine()
	_, err := Join(pair.Build, pair.Probe,
		Config{Scheme: Group, Fanout: 4, MemBudget: 4 << 10, Workers: 4, NoSpill: true})
	if err == nil {
		t.Fatalf("infeasible budget did not fail")
	}
	if _, ok := err.(*BudgetError); !ok {
		t.Fatalf("error %T (%v), want *BudgetError", err, err)
	}
	waitForGoroutines(t, before)
}

// waitForGoroutines asserts the goroutine count settles back to at most
// base: a failed join must not leak morsel workers. The retry loop
// absorbs runtime-internal goroutines winding down.
func waitForGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d running, want <= %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestFanoutFor(t *testing.T) {
	if f := fanoutFor(1000, 20, 256<<20); f != 1 {
		t.Fatalf("small build should not partition, got fanout %d", f)
	}
	f := fanoutFor(10_000_000, 20, 1<<20)
	if f < 64 || f&(f-1) != 0 {
		t.Fatalf("cache-budget fanout = %d, want a power of two covering the build", f)
	}
}
