package native

import (
	"encoding/binary"
	"testing"

	"hashjoin/internal/arena"
	"hashjoin/internal/hash"
)

// FuzzTableInsertProbe drives the native hash table's insert and probe
// path with fuzz-derived keys and checks every lookup against a map
// oracle. The input bytes decode as a shift nibble followed by uint32
// keys; the first half are inserted, all of them are probed — so the
// fuzzer explores hits, misses, collisions, and overflow-slab growth.
func FuzzTableInsertProbe(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{3, 1, 0, 0, 0, 1, 0, 0, 0, 2, 0, 0, 0})
	f.Add([]byte{8, 0xAA, 0xBB, 0xCC, 0xDD, 0xAA, 0xBB, 0xCC, 0xDD})
	f.Fuzz(func(t *testing.T, in []byte) {
		if len(in) < 1 {
			return
		}
		shift := uint(in[0] & 15)
		in = in[1:]
		keys := make([]uint32, 0, len(in)/4)
		for len(in) >= 4 {
			keys = append(keys, binary.LittleEndian.Uint32(in))
			in = in[4:]
		}
		if len(keys) > 4096 {
			keys = keys[:4096]
		}
		nInsert := len(keys) / 2

		tbl := NewTable(nInsert, shift)
		oracle := map[uint32]int{} // key -> inserted count
		for i := 0; i < nInsert; i++ {
			k := keys[i]
			// Refs encode the key so the probe can verify what it finds.
			tbl.Insert(hash.CodeU32(k), uint64(arena.Base)+uint64(k))
			oracle[k]++
		}
		if got := tbl.TotalCells(); got != nInsert {
			t.Fatalf("TotalCells = %d after %d inserts", got, nInsert)
		}
		for _, k := range keys {
			matches := 0
			tbl.Lookup(hash.CodeU32(k), func(ref uint64) {
				if uint32(ref-uint64(arena.Base)) == k {
					matches++
				}
			})
			if matches != oracle[k] {
				t.Fatalf("key %#x: %d matches, oracle says %d", k, matches, oracle[k])
			}
		}
	})
}
