package native

import (
	"context"
	"errors"
	"os"
	"testing"
	"time"

	"hashjoin/internal/arena"
	"hashjoin/internal/fault"
	"hashjoin/internal/workload"
)

// Fault-injected teardown proofs for the native join: any single
// injected fault — error, panic, or cancellation — must yield exactly
// one typed error from Join, leave no goroutines behind, and leave the
// spill directory empty. The spilling workload below is the irreducible
// skew case, so every test drives the deepest teardown path (morsel
// workers + spill manager + write-behind/read-ahead workers).

// spillSpec is a workload whose single shared key defeats radix
// partitioning, forcing the out-of-core tier under any small budget.
var spillSpec = workload.Spec{
	NBuild: 2000, TupleSize: 20, MatchesPerBuild: 1, PctMatched: 100, Seed: 11, Skew: 2000,
}

// spillCfg returns a Config that forces spillSpec through the spill
// tier into dir.
func spillCfg(dir string) Config {
	return Config{Scheme: Group, Fanout: 2, MemBudget: 4 << 10, Workers: 2, SpillDir: dir}
}

// assertClean asserts the join left nothing behind: no goroutines above
// the baseline and no files in the spill parent dir.
func assertClean(t *testing.T, base int, dir string) {
	t.Helper()
	fault.CheckGoroutines(t, base)
	fault.CheckNoFiles(t, dir)
}

// TestJoinCancelledBeforeStart: a pre-cancelled context returns a typed
// *CancelError without doing any work.
func TestJoinCancelledBeforeStart(t *testing.T) {
	a := arena.New(workload.ArenaBytesFor(spillSpec) + 1<<20)
	pair := workload.Generate(a, spillSpec)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dir := t.TempDir()
	base := fault.Goroutines()

	cfg := spillCfg(dir)
	cfg.Ctx = ctx
	_, err := Join(pair.Build, pair.Probe, cfg)
	var ce *CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("error %T (%v), want *CancelError", err, err)
	}
	if !errors.Is(err, ErrCancelled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancel error does not match both sentinels: %v", err)
	}
	if ce.PairsDone != 0 {
		t.Fatalf("pre-cancelled join reports %d pairs done", ce.PairsDone)
	}
	assertClean(t, base, dir)
}

// TestJoinCancelMidSpill cancels a running spilling join: injected page
// delays stretch the spill phase so the cancel lands mid-flight, and
// the join must stop within a page boundary with a typed error, no
// leaked workers, and an empty spill dir.
func TestJoinCancelMidSpill(t *testing.T) {
	defer fault.Reset()
	a := arena.New(workload.ArenaBytesFor(spillSpec) + 1<<20)
	pair := workload.Generate(a, spillSpec)
	dir := t.TempDir()
	base := fault.Goroutines()

	// 2ms per spilled page write makes the spill phase last tens of
	// milliseconds, so a 5ms cancel always lands mid-spill.
	fault.Enable(fault.SiteSpillWrite, fault.Fault{Kind: fault.KindDelay, Delay: 2 * time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	timer := time.AfterFunc(5*time.Millisecond, cancel)
	defer timer.Stop()

	cfg := spillCfg(dir)
	cfg.Ctx = ctx
	start := time.Now()
	_, err := Join(pair.Build, pair.Probe, cfg)
	elapsed := time.Since(start)
	var ce *CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("error %T (%v), want *CancelError", err, err)
	}
	if !errors.Is(err, ErrCancelled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancel error does not match both sentinels: %v", err)
	}
	if ce.PairsDone >= ce.PairsTotal {
		t.Fatalf("cancelled join claims all %d pairs done", ce.PairsTotal)
	}
	// The join must not have run to completion under the delays: with
	// dozens of delayed pages a full run takes far longer than this.
	if elapsed > 2*time.Second {
		t.Fatalf("join ran %v after cancel; cooperative checks missed", elapsed)
	}
	assertClean(t, base, dir)
}

// TestJoinDeadlineExceeded: a context deadline surfaces as a
// *CancelError matching context.DeadlineExceeded.
func TestJoinDeadlineExceeded(t *testing.T) {
	defer fault.Reset()
	a := arena.New(workload.ArenaBytesFor(spillSpec) + 1<<20)
	pair := workload.Generate(a, spillSpec)
	dir := t.TempDir()
	base := fault.Goroutines()

	fault.Enable(fault.SiteSpillWrite, fault.Fault{Kind: fault.KindDelay, Delay: 2 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()

	cfg := spillCfg(dir)
	cfg.Ctx = ctx
	_, err := Join(pair.Build, pair.Probe, cfg)
	if !errors.Is(err, ErrCancelled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline error does not match both sentinels: %v", err)
	}
	assertClean(t, base, dir)
}

// TestJoinWorkerPanicContained: an injected panic in a morsel worker is
// recovered into a typed error; the Joiner survives and joins correctly
// afterwards.
func TestJoinWorkerPanicContained(t *testing.T) {
	defer fault.Reset()
	spec := workload.Spec{NBuild: 5000, TupleSize: 20, MatchesPerBuild: 1, Seed: 3}
	a := arena.New(workload.ArenaBytesFor(spec))
	pair := workload.Generate(a, spec)
	base := fault.Goroutines()

	fault.Enable(fault.SiteMorselWorker, fault.Fault{Kind: fault.KindPanic, Count: 1})
	jn := NewJoiner()
	_, err := jn.Join(pair.Build, pair.Probe, Config{Scheme: Group, Fanout: 8, Workers: 4})
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("error %v, want injected-fault class", err)
	}
	fault.CheckGoroutines(t, base)

	fault.Reset()
	r, err := jn.Join(pair.Build, pair.Probe, Config{Scheme: Group, Fanout: 8, Workers: 4})
	if err != nil {
		t.Fatalf("join after contained panic: %v", err)
	}
	if r.NOutput != pair.ExpectedMatches || r.KeySum != pair.KeySum {
		t.Fatalf("post-panic join got (%d, %d), want (%d, %d)",
			r.NOutput, r.KeySum, pair.ExpectedMatches, pair.KeySum)
	}
}

// TestJoinSpillFaultsTyped: a permanent injected error at each spill
// site yields exactly one typed error through the whole stack, with
// clean teardown.
func TestJoinSpillFaultsTyped(t *testing.T) {
	for _, site := range []string{
		fault.SiteSpillCreate, fault.SiteSpillWrite, fault.SiteSpillRead, fault.SiteSpillSync,
	} {
		t.Run(site, func(t *testing.T) {
			defer fault.Reset()
			a := arena.New(workload.ArenaBytesFor(spillSpec) + 1<<20)
			pair := workload.Generate(a, spillSpec)
			dir := t.TempDir()
			base := fault.Goroutines()

			fault.Enable(site, fault.Fault{Kind: fault.KindError})
			cfg := spillCfg(dir)
			_, err := Join(pair.Build, pair.Probe, cfg)
			if !errors.Is(err, fault.ErrInjected) {
				t.Fatalf("error %v, want injected-fault class", err)
			}
			assertClean(t, base, dir)
		})
	}
}

// TestJoinSpillPanicContained: an injected panic inside a write-behind
// worker must not escape Join or deadlock its teardown.
func TestJoinSpillPanicContained(t *testing.T) {
	defer fault.Reset()
	a := arena.New(workload.ArenaBytesFor(spillSpec) + 1<<20)
	pair := workload.Generate(a, spillSpec)
	dir := t.TempDir()
	base := fault.Goroutines()

	fault.Enable(fault.SiteSpillWrite, fault.Fault{Kind: fault.KindPanic, Count: 1})
	_, err := Join(pair.Build, pair.Probe, spillCfg(dir))
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("error %v, want injected-fault class", err)
	}
	assertClean(t, base, dir)
}

// TestJoinArenaFaultIsOOM: an injected arena-admission fault presents
// as the arena saying no — an error in the out-of-memory class.
func TestJoinArenaFaultIsOOM(t *testing.T) {
	defer fault.Reset()
	a := arena.New(workload.ArenaBytesFor(spillSpec) + 1<<20)
	pair := workload.Generate(a, spillSpec)
	dir := t.TempDir()
	base := fault.Goroutines()

	fault.Enable(fault.SiteArenaAlloc, fault.Fault{Kind: fault.KindError})
	_, err := Join(pair.Build, pair.Probe, spillCfg(dir))
	if !errors.Is(err, arena.ErrOutOfMemory) {
		t.Fatalf("error %v, want out-of-memory class", err)
	}
	assertClean(t, base, dir)
}

// TestJoinFaultMatrix is the randomized sweep the CI fault matrix
// drives through HJ_FAULT_PROB: spill faults armed at the configured
// probability, repeated joins, and after every run the same invariant —
// either a correct result or one classified error, never a wrong
// answer, a leak, or an orphan file.
func TestJoinFaultMatrix(t *testing.T) {
	defer fault.Reset()
	prob := fault.ProbFromEnv()
	a := arena.New(workload.ArenaBytesFor(spillSpec) + 1<<20)
	pair := workload.Generate(a, spillSpec)
	dir := t.TempDir()
	base := fault.Goroutines()
	mark := a.Used()

	jn := NewJoiner()
	failures := 0
	for i := 0; i < 6; i++ {
		a.Truncate(mark) // reclaim the previous run's spill pool
		fault.Enable(fault.SiteSpillWrite, fault.Fault{Kind: fault.KindError, Prob: prob, Count: 1, Seed: int64(100 + i)})
		fault.Enable(fault.SiteSpillRead, fault.Fault{Kind: fault.KindError, Prob: prob, Count: 1, Seed: int64(200 + i)})
		fault.Enable(fault.SiteMorselWorker, fault.Fault{Kind: fault.KindError, Prob: prob, Count: 1, Seed: int64(300 + i)})
		r, err := jn.Join(pair.Build, pair.Probe, spillCfg(dir))
		fault.Reset()
		if err != nil {
			failures++
			if !errors.Is(err, fault.ErrInjected) {
				t.Fatalf("run %d: unclassified error %v", i, err)
			}
		} else if r.NOutput != pair.ExpectedMatches || r.KeySum != pair.KeySum {
			t.Fatalf("run %d: wrong result (%d, %d), want (%d, %d)",
				i, r.NOutput, r.KeySum, pair.ExpectedMatches, pair.KeySum)
		}
		fault.CheckNoFiles(t, dir)
	}
	if prob >= 1 && failures != 6 {
		t.Fatalf("at probability 1 every run must fail; %d of 6 did", failures)
	}
	fault.CheckGoroutines(t, base)
}

// TestJoinTempDirRemovedOnPanic is the crash-safety check at the Join
// boundary: a panic injected mid-spill-write must still remove the
// per-join temp dir, leaving no orphan files for the next run to trip
// over.
func TestJoinTempDirRemovedOnPanic(t *testing.T) {
	defer fault.Reset()
	a := arena.New(workload.ArenaBytesFor(spillSpec) + 1<<20)
	pair := workload.Generate(a, spillSpec)
	dir := t.TempDir()

	fault.Enable(fault.SiteSpillWrite, fault.Fault{Kind: fault.KindPanic, Count: 1})
	_, err := Join(pair.Build, pair.Probe, spillCfg(dir))
	if err == nil {
		t.Fatal("injected panic produced no error")
	}
	ents, rerr := os.ReadDir(dir)
	if rerr != nil {
		t.Fatalf("ReadDir: %v", rerr)
	}
	if len(ents) != 0 {
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name()
		}
		t.Fatalf("orphan spill files after panic: %v", names)
	}
}
