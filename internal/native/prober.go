package native

import "hashjoin/internal/plan"

// Prober is the streaming face of the native join: the row table is
// built once over the build side's entries, then the caller probes it
// one batch at a time, receiving matches through a callback at each
// batch boundary. It is the native analog of the simulator's
// core.Prober — the section 5.4 shape that makes the prefetched join
// pipeline-friendly: with batches sized to the group size G, batch
// boundaries coincide with prefetch-group boundaries, so latency hiding
// inside a batch is exactly what it would be in the monolithic loop.
//
// Per-batch probe state persists across ProbeBatch calls instead of
// being recomputed: entries arrive with their keys and hash codes
// already memoized from the partition phase, the stage-state scratch is
// reused batch over batch, and the match bitmask is retained (readable
// through Matched until the next batch overwrites it).
//
// A Prober holds the whole build side in one table (no partitioning);
// partitioned pipelines use Joiner.JoinStream instead. Probing mutates
// only the Prober's own scratch, never the table, so any number of
// Probers created from one BuildSide may run concurrently.
type Prober struct {
	j      *pairJoiner
	scheme Scheme
}

// NewProber serializes build into a row table with the scheme's build
// loop (group-batched directory prefetches for Group, pipelined for
// Pipelined). data must be the arena backing slice the entries' Refs
// point into, and width the build schema's fixed tuple width. Zero G/D
// select the native defaults.
func NewProber(data []byte, build []Entry, width int, scheme Scheme, g, d int) *Prober {
	return NewTypedProber(data, build, width, plan.Inner, scheme, g, d)
}

// NewTypedProber is NewProber with join-type semantics: the probe loops
// emit per jt's contract (see jointype.go — left-outer unmatched rows
// arrive with build == nil, semi/anti emit the probe side only, right
// outer accumulates a build-row match bitmap drained by
// EmitUnmatchedBuild at end of stream). The streaming Prober holds the
// whole build side in one table, so left outer/semi/anti resolve each
// probe row inline within its batch and need no end-of-stream pass.
func NewTypedProber(data []byte, build []Entry, width int, jt plan.JoinType, scheme Scheme, g, d int) *Prober {
	cfg := Config{Scheme: scheme, G: g, D: d}.normalized()
	p := &Prober{j: newPairJoiner(), scheme: scheme}
	p.j.data = data
	p.j.width = width
	p.j.g, p.j.d = cfg.G, cfg.D
	p.j.joinType = jt
	p.j.t.Reset(len(build), width, 0)
	p.j.t.BuildSerial(data, build, scheme, cfg.G, cfg.D)
	if jt == plan.RightOuter {
		p.j.armBuildMatched(len(build))
	}
	return p
}

// JoinType returns the prober's match semantics.
func (p *Prober) JoinType() plan.JoinType { return p.j.joinType }

// EmitUnmatchedBuild finishes a right-outer probe stream: it emits every
// build row no batch matched, with probeRef 0 (null probe side). Call it
// exactly once, after the last ProbeBatch; other join types no-op.
func (p *Prober) EmitUnmatchedBuild(emit func(build []byte, probeRef uint64)) {
	if p.j.joinType != plan.RightOuter {
		return
	}
	p.j.sink = emit
	p.j.sweepUnmatchedBuild()
	p.j.sink = nil
}

// G returns the group size the probe loops run with; callers that want
// batch boundaries to coincide with group boundaries feed ProbeBatch at
// most G entries per call (larger batches are strip-mined internally).
func (p *Prober) G() int { return p.j.g }

// ProbeBatch probes one batch of entries with the Prober's scheme,
// calling emit for every validated match with the build row's
// serialized key+payload bytes (valid only for the duration of the
// call) and the probe tuple address. The key comparison happens in-row;
// the build relation is never touched. Matches are delivered in probe
// order within a batch when the table was built serially.
func (p *Prober) ProbeBatch(batch []Entry, emit func(build []byte, probeRef uint64)) {
	if len(batch) == 0 {
		return
	}
	need := (len(batch) + 63) / 64
	if cap(p.j.matched) < need {
		p.j.matched = make([]uint64, need)
	} else {
		p.j.matched = p.j.matched[:need]
		clear(p.j.matched)
	}
	p.j.sink = emit
	p.j.probeFor(batch, p.scheme)
	p.j.sink = nil
}

// Matched returns the previous batch's match bitmask: bit i set means
// batch entry i produced at least one validated match. The slice is
// overwritten by the next ProbeBatch call. Outer/semi/anti joins will
// consume this to emit non-matching or at-most-once rows.
func (p *Prober) Matched() []uint64 { return p.j.matched }

// NOutput returns the validated matches emitted so far.
func (p *Prober) NOutput() int { return p.j.nOutput }

// KeySum returns the running sum of matched build keys, the same
// order-independent checksum the monolithic join reports.
func (p *Prober) KeySum() uint64 { return p.j.keySum }
