package native

// Prober is the streaming face of the native join: the hash table is
// built once over the build side's entries, then the caller probes it
// one batch at a time, receiving matches through a callback at each
// batch boundary. It is the native analog of the simulator's
// core.Prober — the section 5.4 shape that makes the prefetched join
// pipeline-friendly: with batches sized to the group size G, batch
// boundaries coincide with prefetch-group boundaries, so latency hiding
// inside a batch is exactly what it would be in the monolithic loop.
//
// A Prober holds the whole build side in one table (no partitioning);
// partitioned pipelines use Joiner.JoinStream instead.
type Prober struct {
	j      *pairJoiner
	scheme Scheme
}

// NewProber builds the flat cache-line hash table over build with the
// scheme's build loop (group-batched inserts for Group, pipelined header
// prefetches for Pipelined). data must be the arena backing slice the
// entries' Refs point into. Zero G/D select the native defaults.
func NewProber(data []byte, build []Entry, scheme Scheme, g, d int) *Prober {
	cfg := Config{Scheme: scheme, G: g, D: d}.normalized()
	p := &Prober{j: newPairJoiner(), scheme: scheme}
	p.j.data = data
	p.j.g, p.j.d = cfg.G, cfg.D
	p.j.t.Reset(len(build), 0)
	switch scheme {
	case Group:
		p.j.buildGroup(build)
	case Pipelined:
		p.j.buildPipelined(build)
	default:
		p.j.buildBaseline(build)
	}
	return p
}

// G returns the group size the probe loops run with; callers that want
// batch boundaries to coincide with group boundaries feed ProbeBatch at
// most G entries per call (larger batches are strip-mined internally).
func (p *Prober) G() int { return p.j.g }

// ProbeBatch probes one batch of entries with the Prober's scheme,
// calling emit for every validated match (build key re-read from the
// tuple bytes and compared, as in the paper's final stage). Matches are
// delivered in probe order within a batch.
func (p *Prober) ProbeBatch(batch []Entry, emit func(buildRef, probeRef uint64)) {
	if len(batch) == 0 {
		return
	}
	p.j.sink = emit
	switch p.scheme {
	case Group:
		p.j.probeGroup(batch)
	case Pipelined:
		p.j.probePipelined(batch)
	default:
		p.j.probeBaseline(batch)
	}
	p.j.sink = nil
}

// NOutput returns the validated matches emitted so far.
func (p *Prober) NOutput() int { return p.j.nOutput }

// KeySum returns the running sum of matched build keys, the same
// order-independent checksum the monolithic join reports.
func (p *Prober) KeySum() uint64 { return p.j.keySum }
