package native

import (
	"fmt"
	"sync"
	"testing"

	"hashjoin/internal/arena"
	"hashjoin/internal/plan"
	"hashjoin/internal/workload"
)

// checkTyped joins pair under cfg and compares against the workload's
// exact per-join-type ground truth.
func checkTyped(t *testing.T, pair *workload.Pair, cfg Config) Result {
	t.Helper()
	r, err := Join(pair.Build, pair.Probe, cfg)
	if err != nil {
		t.Fatalf("%v join: %v", cfg.JoinType, err)
	}
	wantN, wantSum := pair.Expected(cfg.JoinType)
	if r.NOutput != wantN || r.KeySum != wantSum {
		t.Fatalf("%v join = (%d, %d), want (%d, %d)",
			cfg.JoinType, r.NOutput, r.KeySum, wantN, wantSum)
	}
	return r
}

// TestJoinTypesParity runs every join type against the workload ground
// truth across schemes and fan-outs, at a mid selectivity so matched
// and unmatched rows exist on both sides.
func TestJoinTypesParity(t *testing.T) {
	spec := workload.Spec{NBuild: 3000, TupleSize: 24, PctMatched: 60,
		MatchRate: 0.6, NProbe: 5000, Seed: 11}
	a := arena.New(workload.ArenaBytesFor(spec))
	pair := workload.Generate(a, spec)
	if pair.ProbeMatched == 0 || pair.ProbeMatched == spec.NProbe ||
		pair.UnmatchedBuildRows == 0 {
		t.Fatalf("degenerate workload: %+v", pair)
	}
	for _, jt := range plan.JoinTypes() {
		for _, scheme := range []Scheme{Baseline, Group, Pipelined} {
			for _, fanout := range []int{1, 8} {
				t.Run(fmt.Sprintf("%v/%v/fanout%d", jt, scheme, fanout), func(t *testing.T) {
					checkTyped(t, pair, Config{
						JoinType: jt, Scheme: scheme, Fanout: fanout, Workers: 2})
				})
			}
		}
	}
}

// TestJoinTypesSelectivityEdges checks the all-miss and all-hit ends of
// the MatchRate knob, where anti/outer output is everything or nothing.
func TestJoinTypesSelectivityEdges(t *testing.T) {
	for _, mr := range []float64{0.001, 1} {
		spec := workload.Spec{NBuild: 500, TupleSize: 16, MatchRate: mr,
			NProbe: 1000, Seed: 7}
		a := arena.New(workload.ArenaBytesFor(spec))
		pair := workload.Generate(a, spec)
		for _, jt := range plan.JoinTypes() {
			t.Run(fmt.Sprintf("mr%v/%v", mr, jt), func(t *testing.T) {
				checkTyped(t, pair, Config{JoinType: jt, Scheme: Group})
			})
		}
	}
}

// TestJoinTypesSpillParity forces the out-of-core tier with irreducible
// duplicate-code skew (4 distinct keys, 750-row chains, 4 KB budget)
// and checks every join type against ground truth — the deferred
// probe-bitmap path and the per-chunk right-outer sweeps.
func TestJoinTypesSpillParity(t *testing.T) {
	spec := workload.Spec{NBuild: 3000, TupleSize: 20, Skew: 750,
		MatchRate: 0.4, NProbe: 3000, Seed: 13}
	a := arena.New(workload.ArenaBytesFor(spec) + 8<<20)
	pair := workload.Generate(a, spec)
	if pair.UnmatchedBuildRows == 0 || pair.ProbeMatched == spec.NProbe {
		t.Fatalf("degenerate workload: %+v", pair)
	}
	for _, jt := range plan.JoinTypes() {
		for _, hybrid := range []bool{false, true} {
			t.Run(fmt.Sprintf("%v/hybrid=%v", jt, hybrid), func(t *testing.T) {
				r := checkTyped(t, pair, Config{
					JoinType: jt, Scheme: Group, Fanout: 4, MemBudget: 4 << 10,
					Workers: 2, SpillDir: t.TempDir(), Hybrid: hybrid})
				if r.SpilledPartitions == 0 {
					t.Fatalf("workload did not reach the spill tier: %+v", r)
				}
			})
		}
	}
}

// TestJoinTypesHybridSeamParity drives the hybrid resident/spilled seam
// on a Zipf workload: hot ranks join partly resident and partly out of
// core, so probe-side match bits must carry across the seam.
func TestJoinTypesHybridSeamParity(t *testing.T) {
	spec := workload.Spec{NBuild: 20000, NProbe: 3000, TupleSize: 20,
		ZipfS: 1.1, ZipfKeys: 2048, Seed: 23}
	a := arena.New(workload.ArenaBytesFor(spec) + 16<<20)
	pair := workload.Generate(a, spec)
	if pair.UnmatchedBuildRows == 0 || pair.ProbeMatched == spec.NProbe {
		t.Fatalf("degenerate workload: probeMatched=%d unmatchedBuild=%d",
			pair.ProbeMatched, pair.UnmatchedBuildRows)
	}
	for _, jt := range plan.JoinTypes() {
		t.Run(jt.String(), func(t *testing.T) {
			r := checkTyped(t, pair, Config{
				JoinType: jt, Scheme: Group, Fanout: 8, MemBudget: 64 << 10,
				Workers: 4, SpillDir: t.TempDir(), Hybrid: true})
			if r.SpilledPartitions == 0 || r.Hybrid.SpilledPairs == 0 {
				t.Fatalf("workload did not cross the hybrid seam: %+v", r)
			}
		})
	}
}

// TestSharedBuildSideTypedProbers proves one immutable BuildSide serves
// concurrent typed probe streams without cross-talk: each prober owns
// its match bitmaps, so under -race this doubles as the data-race proof
// for the semi short-circuit and the right-outer build bits.
func TestSharedBuildSideTypedProbers(t *testing.T) {
	a := arena.New(4 << 20)
	codes := make([]uint32, 400)
	for i := range codes {
		codes[i] = uint32(i) * 2654435761
	}
	build := mkEntries(t, a, codes)
	// Probe = all build entries (hits) + as many guaranteed misses
	// (disjoint codes, so the code filter rejects them).
	missCodes := make([]uint32, len(codes))
	for i := range missCodes {
		missCodes[i] = codes[i] ^ 0xdeadbeef
	}
	miss := mkEntries(t, a, missCodes)
	probe := append(append([]Entry{}, build...), miss...)
	var hitSum, missSum uint64
	for _, e := range build {
		hitSum += uint64(e.Key)
	}
	for _, e := range miss {
		missSum += uint64(e.Key)
	}

	bs, err := BuildRows(a.Data(), build, 8, BuildConfig{})
	if err != nil {
		t.Fatalf("BuildRows: %v", err)
	}

	type want struct {
		jt  plan.JoinType
		n   int
		sum uint64
	}
	wants := []want{
		{plan.LeftSemi, len(build), hitSum},
		{plan.LeftSemi, len(build), hitSum},
		{plan.LeftAnti, len(miss), missSum},
		{plan.RightOuter, len(build), hitSum}, // all build rows matched: no sweep output
		{plan.LeftOuter, len(probe), hitSum},
	}
	var wg sync.WaitGroup
	errs := make([]error, len(wants))
	for i, w := range wants {
		wg.Add(1)
		go func(i int, w want) {
			defer wg.Done()
			p := bs.NewTypedProber(w.jt, Group, 0, 0)
			for lo := 0; lo < len(probe); lo += p.G() {
				hi := min(lo+p.G(), len(probe))
				p.ProbeBatch(probe[lo:hi], func([]byte, uint64) {})
			}
			p.EmitUnmatchedBuild(func([]byte, uint64) {})
			if p.NOutput() != w.n || p.KeySum() != w.sum {
				errs[i] = fmt.Errorf("%v prober = (%d, %d), want (%d, %d)",
					w.jt, p.NOutput(), p.KeySum(), w.n, w.sum)
			}
		}(i, w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}

// TestTypedProberRightOuterSweep checks the streaming right-outer path
// end to end: a probe stream touching half the build side must sweep
// exactly the other half, with probeRef 0.
func TestTypedProberRightOuterSweep(t *testing.T) {
	a := arena.New(1 << 20)
	codes := make([]uint32, 100)
	for i := range codes {
		codes[i] = uint32(i) * 40503
	}
	build := mkEntries(t, a, codes)
	probe := append([]Entry{}, build[:50]...)

	p := NewTypedProber(a.Data(), build, 8, plan.RightOuter, Pipelined, 0, 0)
	p.ProbeBatch(probe, func(b []byte, ref uint64) {
		if b == nil || ref == 0 {
			t.Fatalf("match emitted as unmatched: build=%v ref=%d", b, ref)
		}
	})
	swept := 0
	p.EmitUnmatchedBuild(func(b []byte, ref uint64) {
		if b == nil || ref != 0 {
			t.Fatalf("sweep emitted probeRef %d", ref)
		}
		swept++
	})
	var want uint64
	for _, e := range build {
		want += uint64(e.Key)
	}
	if swept != 50 || p.NOutput() != 100 || p.KeySum() != want {
		t.Fatalf("swept=%d NOutput=%d KeySum=%d, want 50/100/%d",
			swept, p.NOutput(), p.KeySum(), want)
	}
}
