package native

import (
	"testing"

	"hashjoin/internal/arena"
)

// TestTableSlabUtilizationBounded proves the overflow slab's waste
// stays bounded under repeated chain growth. Eight buckets are filled
// one after another, so every chain walks the full doubling ladder;
// with free-list recycling each outgrown region is reused by the next
// chain's growth, and utilization stays high. Before recycling, every
// doubling stranded its old region forever: this workload allocated
// ~2x the live cells (utilization ~0.49) and got worse with every
// additional doubling.
func TestTableSlabUtilizationBounded(t *testing.T) {
	const buckets, perBucket = 8, 1000
	tbl := NewTable(buckets, 0)
	for b := uint32(0); b < buckets; b++ {
		for i := 0; i < perBucket; i++ {
			tbl.Insert(b, uint64(arena.Base)+uint64(b)*perBucket+uint64(i))
		}
	}
	if got := tbl.TotalCells(); got != buckets*perBucket {
		t.Fatalf("TotalCells = %d, want %d", got, buckets*perBucket)
	}
	if u := tbl.SlabUtilization(); u < 0.8 {
		t.Fatalf("SlabUtilization = %.3f, want >= 0.8 (recycling bounds the waste)", u)
	}
	// The chains themselves are intact after all the region moves.
	for b := uint32(0); b < buckets; b++ {
		found := 0
		tbl.Lookup(b, func(uint64) { found++ })
		if found != perBucket {
			t.Fatalf("bucket %d: %d refs after recycled growth, want %d", b, found, perBucket)
		}
	}
}

// TestTableSlabRecyclingReusesRegions pins the mechanism, not just the
// ratio: growing a second chain through the same size classes a first
// chain abandoned must not extend the slab at all.
func TestTableSlabRecyclingReusesRegions(t *testing.T) {
	tbl := NewTable(4, 0)
	for i := 0; i < 500; i++ {
		tbl.Insert(0, uint64(arena.Base)+uint64(i))
	}
	grown := len(tbl.cells)
	for i := 0; i < 200; i++ { // 200 < the first chain's final region cap
		tbl.Insert(1, uint64(arena.Base)+1000+uint64(i))
	}
	if len(tbl.cells) != grown {
		t.Fatalf("second chain extended the slab %d -> %d; its growth should recycle the first chain's abandoned regions",
			grown, len(tbl.cells))
	}
}

// TestTableResetReleasesPeak is the satellite-2 accounting proof: one
// skewed pair must not pin its peak allocation across Reset, while a
// comparable-size Reset keeps the capacity (no churn).
func TestTableResetReleasesPeak(t *testing.T) {
	tbl := NewTable(100, 0)
	for i := 0; i < 50_000; i++ {
		tbl.Insert(0, uint64(arena.Base)+uint64(i)) // one giant chain
	}
	peak := tbl.MemFootprint()

	// Far smaller need: the slab and headers must actually be released.
	tbl.Reset(16, 0)
	small := tbl.MemFootprint()
	bound := tableHeaderFloor*headerSize + tableCellFloor*cellSize
	if small > bound {
		t.Fatalf("MemFootprint after small Reset = %d, want <= %d (floors)", small, bound)
	}
	if small >= peak/10 {
		t.Fatalf("small Reset kept %d of peak %d bytes", small, peak)
	}

	// And the shrunken table still behaves.
	tbl.Insert(3, uint64(arena.Base)+7)
	found := 0
	tbl.Lookup(3, func(uint64) { found++ })
	if found != 1 {
		t.Fatalf("lookup after shrink found %d", found)
	}

	// A capacity comparable to the new need is retained — Reset must
	// not churn allocations between similar-size pairs.
	even := NewTable(5000, 0)
	steady := even.MemFootprint()
	even.Reset(4000, 0)
	if got := even.MemFootprint(); got != steady {
		t.Fatalf("similar-size Reset changed footprint %d -> %d; want retained capacity", steady, got)
	}
}
