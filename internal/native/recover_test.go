package native

// Recovery parity proofs for the self-healing spill tier: a join that
// loses a spill directory mid-write, or finds a spill page corrupted on
// read, must recover transparently — same NOutput and KeySum as the
// fault-free run, recovery counters ticking, nothing left behind. Only
// when every configured directory is down does the join shed, with one
// typed retryable error.

import (
	"errors"
	"syscall"
	"testing"

	"hashjoin/internal/arena"
	"hashjoin/internal/fault"
	"hashjoin/internal/spill"
	"hashjoin/internal/workload"
)

// TestSpillDirFailoverParity: an EIO on the first spill write indicts
// spill dir A; the partition is quarantined and rebuilt into dir B and
// the join's output is bit-identical to the fault-free answer.
func TestSpillDirFailoverParity(t *testing.T) {
	defer fault.Reset()
	t.Cleanup(spill.ResetHealth)
	a := arena.New(workload.ArenaBytesFor(spillSpec) + 1<<20)
	pair := workload.Generate(a, spillSpec)
	dirA, dirB := t.TempDir(), t.TempDir()
	base := fault.Goroutines()

	fault.Enable(fault.SiteSpillWrite, fault.Fault{Kind: fault.KindError, Err: syscall.EIO, Count: 1})
	cfg := spillCfg(dirA + "," + dirB)
	r, err := Join(pair.Build, pair.Probe, cfg)
	if err != nil {
		t.Fatalf("failover join failed: %v", err)
	}
	if r.NOutput != pair.ExpectedMatches || r.KeySum != pair.KeySum {
		t.Fatalf("failover join got (%d, %d), want fault-free (%d, %d)",
			r.NOutput, r.KeySum, pair.ExpectedMatches, pair.KeySum)
	}
	if r.SpillFailovers == 0 {
		t.Fatal("join recovered but reports no directory failovers")
	}
	if r.SpillRebuilds == 0 {
		t.Fatal("join recovered but reports no partition rebuilds")
	}
	h := spill.Health(dirA + "," + dirB)
	if h[0].Healthy || !h[1].Healthy {
		t.Fatalf("health after failover = %+v, want [unhealthy healthy]", h)
	}
	assertClean(t, base, dirA)
	fault.CheckNoFiles(t, dirB)
}

// TestSpillCorruptPageRebuildParity: a page that fails checksum
// verification on read quarantines its file and rebuilds the partition
// from the in-memory source — output still bit-identical, exactly one
// rebuild, and the directory is NOT indicted (corruption is per-file).
func TestSpillCorruptPageRebuildParity(t *testing.T) {
	defer fault.Reset()
	t.Cleanup(spill.ResetHealth)
	a := arena.New(workload.ArenaBytesFor(spillSpec) + 1<<20)
	pair := workload.Generate(a, spillSpec)
	dir := t.TempDir()
	base := fault.Goroutines()

	fault.Enable(fault.SiteSpillVerify, fault.Fault{Kind: fault.KindError, Count: 1})
	r, err := Join(pair.Build, pair.Probe, spillCfg(dir))
	if err != nil {
		t.Fatalf("corrupt-page join failed: %v", err)
	}
	if r.NOutput != pair.ExpectedMatches || r.KeySum != pair.KeySum {
		t.Fatalf("corrupt-page join got (%d, %d), want fault-free (%d, %d)",
			r.NOutput, r.KeySum, pair.ExpectedMatches, pair.KeySum)
	}
	if r.SpillRebuilds == 0 {
		t.Fatal("join recovered from corruption but reports no rebuilds")
	}
	if h := spill.Health(dir); !h[0].Healthy {
		t.Fatalf("corruption indicted the directory: %+v", h[0])
	}
	assertClean(t, base, dir)
}

// TestSpillCorruptPageSecondStrikeTyped: each partition gets ONE
// rebuild; unbounded corruption (the fault refires during the rebuilt
// read) must surface as one typed *CorruptPageError, not a loop.
func TestSpillCorruptPageSecondStrikeTyped(t *testing.T) {
	defer fault.Reset()
	t.Cleanup(spill.ResetHealth)
	a := arena.New(workload.ArenaBytesFor(spillSpec) + 1<<20)
	pair := workload.Generate(a, spillSpec)
	dir := t.TempDir()
	base := fault.Goroutines()

	fault.Enable(fault.SiteSpillVerify, fault.Fault{Kind: fault.KindError})
	_, err := Join(pair.Build, pair.Probe, spillCfg(dir))
	var cpe *spill.CorruptPageError
	if !errors.As(err, &cpe) {
		t.Fatalf("error %T (%v), want *CorruptPageError after rebuild budget", err, err)
	}
	assertClean(t, base, dir)
}

// TestSpillUnavailableAllDirsDown: with every configured directory
// unusable, the irreducible workload degrades up the ladder and finally
// sheds with the typed, retryable spill-unavailable error.
func TestSpillUnavailableAllDirsDown(t *testing.T) {
	t.Cleanup(spill.ResetHealth)
	a := arena.New(workload.ArenaBytesFor(spillSpec) + 1<<20)
	pair := workload.Generate(a, spillSpec)
	base := fault.Goroutines()

	cfg := spillCfg("/nonexistent/hjspill-a,/nonexistent/hjspill-b")
	_, err := Join(pair.Build, pair.Probe, cfg)
	if !errors.Is(err, spill.ErrSpillUnavailable) {
		t.Fatalf("error %v, want ErrSpillUnavailable", err)
	}
	var sue *spill.SpillUnavailableError
	if !errors.As(err, &sue) || len(sue.Dirs) != 2 {
		t.Fatalf("error %T (%v), want *SpillUnavailableError with both dirs", err, err)
	}
	fault.CheckGoroutines(t, base)
}

// TestSpillDirFailoverExhaustionTyped: EIO on every write burns through
// both configured directories; the join sheds with the typed
// spill-unavailable error rather than an EIO soup, and the health
// registry shows both dirs down.
func TestSpillDirFailoverExhaustionTyped(t *testing.T) {
	defer fault.Reset()
	t.Cleanup(spill.ResetHealth)
	a := arena.New(workload.ArenaBytesFor(spillSpec) + 1<<20)
	pair := workload.Generate(a, spillSpec)
	dirA, dirB := t.TempDir(), t.TempDir()
	base := fault.Goroutines()

	fault.Enable(fault.SiteSpillWrite, fault.Fault{Kind: fault.KindError, Err: syscall.EIO})
	spec := dirA + "," + dirB
	_, err := Join(pair.Build, pair.Probe, spillCfg(spec))
	if !errors.Is(err, spill.ErrSpillUnavailable) {
		t.Fatalf("error %v, want ErrSpillUnavailable after exhausting dirs", err)
	}
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("shed error lost the underlying errno: %v", err)
	}
	for i, h := range spill.Health(spec) {
		if h.Healthy {
			t.Fatalf("dir %d still healthy after exhaustion: %+v", i, h)
		}
	}
	assertClean(t, base, dirA)
	fault.CheckNoFiles(t, dirB)
}

// TestSpillFailoverUnderHybrid: the hybrid planner's resident-prefix
// path shares the same recovery machinery — parity under a write-time
// directory failure with Hybrid enabled.
func TestSpillFailoverUnderHybrid(t *testing.T) {
	defer fault.Reset()
	t.Cleanup(spill.ResetHealth)
	a := arena.New(workload.ArenaBytesFor(spillSpec) + 1<<20)
	pair := workload.Generate(a, spillSpec)
	dirA, dirB := t.TempDir(), t.TempDir()
	base := fault.Goroutines()

	fault.Enable(fault.SiteSpillWrite, fault.Fault{Kind: fault.KindError, Err: syscall.EIO, Count: 1})
	cfg := spillCfg(dirA + "," + dirB)
	cfg.Hybrid = true
	r, err := Join(pair.Build, pair.Probe, cfg)
	if err != nil {
		t.Fatalf("hybrid failover join failed: %v", err)
	}
	if r.NOutput != pair.ExpectedMatches || r.KeySum != pair.KeySum {
		t.Fatalf("hybrid failover got (%d, %d), want (%d, %d)",
			r.NOutput, r.KeySum, pair.ExpectedMatches, pair.KeySum)
	}
	if r.SpillFailovers == 0 || r.SpillRebuilds == 0 {
		t.Fatalf("hybrid failover counters = (%d, %d), want both > 0",
			r.SpillFailovers, r.SpillRebuilds)
	}
	assertClean(t, base, dirA)
	fault.CheckNoFiles(t, dirB)
}
