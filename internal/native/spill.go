package native

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"hashjoin/internal/arena"
	"hashjoin/internal/plan"
	"hashjoin/internal/spill"
	"hashjoin/internal/storage"
)

// Out-of-core tier of the degradation ladder. A pair that is still over
// budget when recursive re-partitioning runs out of depth or hash bits —
// irreducible duplicate-code skew — no longer fails: it is spilled to
// disk through internal/spill and joined in build-side chunks, each
// chunk's hash table sized to the budget, with the probe partition
// streamed past every chunk (the classic GRACE fallback, §2 of the
// paper, with the write-behind/read-ahead overlap iosim models). The
// reducible path therefore never returns *BudgetError; only Config.
// NoSpill restores the old failure mode.

// spillChunkPagesCap bounds how many build pages one chunk pins, so a
// huge budget does not translate into a huge buffer pool.
const spillChunkPagesCap = 256

// spillState is the per-Join spill coordinator, shared by all morsel
// workers of one Joiner.Join call. The Manager (and its temp directory)
// is created lazily on the first spill; mu serializes spilled pairs —
// one spilled pair joins at a time, while other workers keep draining
// in-memory pairs. That serialization is what makes the buffer pool
// sizing safe and the spill path's arena allocations single-threaded
// relative to each other.
type spillState struct {
	a          *arena.Arena
	dir        string
	workers    int
	buildWidth int
	probeWidth int
	budget     int
	pageSize   int             // 0: spill.DefaultPageSize
	ctx        context.Context // nil: never cancelled

	mu    sync.Mutex
	m     *spill.Manager
	merr  error // sticky Manager creation failure
	pairs int   // partition pairs that went through the spill tier
}

// newSpillState returns the spill coordinator for a join, or nil when
// spilling is disabled or the schemas cannot round-trip through slotted
// pages (variable width, or no leading 4-byte key to re-decode).
func newSpillState(build, probe *storage.Relation, cfg Config) *spillState {
	if cfg.NoSpill {
		return nil
	}
	bs, ps := build.Schema, probe.Schema
	if bs.HasVar() || ps.HasVar() || bs.FixedWidth() < 4 || ps.FixedWidth() < 4 {
		return nil
	}
	workers := cfg.SpillWorkers
	if workers < 1 {
		workers = spill.DefaultWorkers
	}
	// The spill tier's page pool comes from the query's scratch arena
	// when one is set (multi-tenant: the carved window), else from the
	// arena the relations live in (single-query: same thing).
	scratch := cfg.Arena
	if scratch == nil {
		scratch = build.Arena()
	}
	return &spillState{
		a:          scratch,
		dir:        cfg.SpillDir,
		workers:    workers,
		buildWidth: bs.FixedWidth(),
		probeWidth: ps.FixedWidth(),
		budget:     cfg.MemBudget,
		pageSize:   cfg.SpillPageSize,
		ctx:        cfg.Ctx,
	}
}

// page returns the spill page size this state's Manager is (or will be)
// configured with: the explicit knob, or the spill default. chunkPages
// and manager both derive from it, so the chunk budget arithmetic and
// the Manager's actual pages can never disagree.
func (sp *spillState) page() int {
	if sp.pageSize > 0 {
		return sp.pageSize
	}
	return spill.DefaultPageSize
}

// chunkPages returns how many build pages one chunk pins: the largest
// count whose tuples' pages + entries + hash table fit the budget,
// clamped to [1, spillChunkPagesCap]. Even chunkPages == 1 always makes
// progress — that is why the spill tier cannot fail on size.
func (sp *spillState) chunkPages() int {
	pageSize := sp.page()
	perPage := pageSize +
		spill.PageCapacity(pageSize, sp.buildWidth)*(entrySize+rowHdrSize+sp.buildWidth+16)
	n := sp.budget / perPage
	if n < 1 {
		n = 1
	}
	if n > spillChunkPagesCap {
		n = spillChunkPagesCap
	}
	return n
}

// manager lazily creates the spill Manager; the failure is sticky so
// every spilled pair after a failed creation reports the same error
// instead of retrying the filesystem.
func (sp *spillState) manager() (*spill.Manager, error) {
	if sp.m == nil && sp.merr == nil {
		sp.m, sp.merr = spill.NewManager(spill.Config{
			Dir:       sp.dir,
			PageSize:  sp.page(),
			Workers:   sp.workers,
			PoolPages: sp.chunkPages() + 3*sp.workers + 4,
			A:         sp.a,
			Ctx:       sp.ctx,
		})
	}
	return sp.m, sp.merr
}

// available reports whether the out-of-core tier can accept a pair: the
// Manager either exists (or can still be created) and at least one
// configured spill directory is healthy. joinPairBudget consults it
// before committing a pair to disk; a false answer degrades the pair
// back up the ladder (or sheds it with unavailable()).
func (sp *spillState) available() bool {
	sp.mu.Lock()
	bad := sp.merr != nil
	sp.mu.Unlock()
	return !bad && spill.AnyHealthy(sp.dir)
}

// unavailable builds the typed shed error for a pair the out-of-core
// tier cannot take.
func (sp *spillState) unavailable() error {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return spill.Unavailable(sp.dir, sp.merr)
}

// finish closes the Manager — removing every spill file — and reports
// the harvested I/O stats and spilled pair count. Safe on a nil
// spillState and idempotent, so Joiner.Join can call it on both the
// normal return and the panic-unwind path.
func (sp *spillState) finish() (spill.Stats, int, error) {
	if sp == nil || sp.m == nil {
		return spill.Stats{}, 0, nil
	}
	st := sp.m.Stats()
	err := sp.m.Close()
	sp.m = nil
	return st, sp.pairs, err
}

// joinPairSpill joins one irreducible over-budget pair out of core:
// write both sides to disk partitions (write-behind), then for each
// build chunk that fits the budget, pin its pages, build a table over
// the decoded entries, and stream the probe partition past it
// (read-ahead). Output refs point into pinned pool pages, so the
// emit/sink path is identical to the in-memory join's.
func (j *pairJoiner) joinPairSpill(build, probe []Entry, shift uint, cfg Config) error {
	sp := j.spill
	sp.mu.Lock()
	defer sp.mu.Unlock()
	m, err := sp.manager()
	if err != nil {
		return err
	}
	sp.pairs++

	bs := &spillSide{data: j.data, entries: build, width: sp.buildWidth}
	if err := sp.writeSide(m, bs); err != nil {
		return err
	}
	ps := &spillSide{data: j.data, entries: probe, width: sp.probeWidth}
	if err := sp.writeSide(m, ps); err != nil {
		return err
	}

	chunkPages := sp.chunkPages()
	br := sp.openSide(m, bs)
	defer br.Close()
	pinned := j.spillPinned[:0]
	defer func() {
		for _, p := range pinned {
			m.Release(p)
		}
		j.spillPinned = pinned[:0]
	}()
	var pr *sideReader
	defer func() {
		if pr != nil {
			pr.Close()
		}
	}()

	// Left outer/semi/anti cannot decide "unmatched" against one build
	// chunk, so the chunk loop runs with the deferred probe bitmap armed.
	// spillPartition writes probe entries in slice order and the reader
	// streams pages back in that order, so a probe row's stream position
	// equals its index in the probe slice — the same indexing the hybrid
	// resident prefix uses, which is what lets bits set before the
	// resident/spilled seam resolve here. The hybrid caller arms the
	// bitmap itself before its resident pass; deferProbe is then already
	// set and the arming (which would clear its bits) is skipped.
	if j.needsProbeBits() && !j.deferProbe {
		j.armProbeBits(len(probe))
	}
	defer func() { j.deferProbe = false; j.probeBase = 0 }()

	for {
		pinned = pinned[:0]
		j.spillBuild = j.spillBuild[:0]
		for len(pinned) < chunkPages {
			pg, ok, err := br.Next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			pinned = append(pinned, pg)
			j.spillBuild = appendPageEntries(j.spillBuild, j.data, pg)
		}
		if len(j.spillBuild) == 0 {
			break
		}
		j.buildSerial(j.spillBuild, shift, cfg.Scheme)

		pr = sp.openSide(m, ps)
		pos := 0
		for {
			pg, ok, err := pr.Next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			j.spillProbe = appendPageEntries(j.spillProbe[:0], j.data, pg)
			j.probeBase = pos
			j.probeFor(j.spillProbe, cfg.Scheme)
			pos += len(j.spillProbe)
			m.Release(pg)
		}
		pr.Close()
		pr = nil
		// Each build row lives in exactly one chunk, so this chunk's
		// table can be swept for unmatched build rows right away.
		if j.joinType == plan.RightOuter {
			j.sweepUnmatchedBuild()
		}
		for _, p := range pinned {
			m.Release(p)
		}
	}
	if j.deferProbe {
		j.probeBase = 0
		j.finishProbeBits(probe)
	}
	return nil
}

// spillSide is one side of a spilled pair together with its immutable
// in-memory source: the entries still reference arena-resident tuples,
// so a partition whose file fails or corrupts can be rebuilt bit-for-bit
// (spillPartition appends in slice order, so the rebuilt stream decodes
// to the identical entry sequence). rebuilt bounds recovery to one
// rebuild attempt per partition — a second failure propagates.
type spillSide struct {
	data    []byte
	entries []Entry
	width   int
	w       *spill.Writer
	rebuilt bool
}

// spillPartition writes one side's entries to a disk partition: tuple
// bytes plus the memoized hash code, exactly the slot layout the
// in-memory partition phase uses (§7.1), so nothing is recomputed on
// the way back in. On failure the partially written Writer (when one
// was created) is returned alongside the error so the caller can
// quarantine it.
func (sp *spillState) spillPartition(m *spill.Manager, data []byte, entries []Entry, width int) (*spill.Writer, error) {
	w, err := m.NewWriter()
	if err != nil {
		return nil, err
	}
	for i := range entries {
		e := &entries[i]
		base := e.Ref - arena.Base
		if err := w.Append(data[base:base+uint64(width)], e.Code); err != nil {
			return w, err
		}
	}
	if err := w.Finish(); err != nil {
		return w, err
	}
	return w, nil
}

// writeSide spills one side to disk with directory failover: a write
// that fails with a *DirFailedError (the directory is now marked
// unhealthy) quarantines the partial file and rewrites the partition,
// which lands on the next healthy directory. The loop is bounded by the
// configured directory count; when every directory has failed in turn
// the typed *SpillUnavailableError sheds the query.
func (sp *spillState) writeSide(m *spill.Manager, s *spillSide) error {
	var lastErr error
	for attempt := 0; attempt <= len(m.Dirs()); attempt++ {
		w, err := sp.spillPartition(m, s.data, s.entries, s.width)
		if err == nil {
			s.w = w
			return nil
		}
		var dfe *spill.DirFailedError
		if !errors.As(err, &dfe) {
			return err
		}
		if w != nil {
			m.Quarantine(w)
			m.NoteRebuild()
		}
		lastErr = err
	}
	return spill.Unavailable(sp.dir, lastErr)
}

// sideReader streams a spilled side back, recovering from a failed or
// corrupt partition file by rebuilding it from the in-memory source and
// resuming at the exact page where the stream left off. Pages are
// written (and therefore decoded) deterministically, so the resumed
// stream is indistinguishable from an unfailed one — that is what makes
// recovery output bit-identical.
type sideReader struct {
	sp        *spillState
	m         *spill.Manager
	side      *spillSide
	r         *spill.Reader
	delivered int // pages already handed to the caller this pass
}

// openSide starts one streaming pass over a spilled side.
func (sp *spillState) openSide(m *spill.Manager, s *spillSide) *sideReader {
	return &sideReader{sp: sp, m: m, side: s, r: s.w.OpenReader()}
}

// Next delivers the next page, transparently rebuilding the partition
// on a recoverable failure.
func (sr *sideReader) Next() (spill.Page, bool, error) {
	for {
		pg, ok, err := sr.r.Next()
		if err == nil {
			if ok {
				sr.delivered++
			}
			return pg, ok, nil
		}
		if rerr := sr.recover(err); rerr != nil {
			return spill.Page{}, false, rerr
		}
	}
}

// Close releases the underlying reader's in-flight buffer.
func (sr *sideReader) Close() { sr.r.Close() }

// recover handles one read failure: quarantine the file, rebuild the
// partition from the immutable in-memory source (once per partition),
// reopen, and skip the pages already delivered. Cancellation and
// second failures propagate unchanged.
func (sr *sideReader) recover(cause error) error {
	if sr.sp.ctx != nil && sr.sp.ctx.Err() != nil {
		return cause
	}
	if sr.side.rebuilt {
		return cause
	}
	sr.side.rebuilt = true
	// Order matters: Close drains the in-flight read-ahead before
	// Quarantine closes the file under it.
	sr.r.Close()
	sr.m.Quarantine(sr.side.w)
	sr.m.NoteRebuild()
	if err := sr.sp.writeSide(sr.m, sr.side); err != nil {
		return err
	}
	r := sr.side.w.OpenReader()
	for i := 0; i < sr.delivered; i++ {
		pg, ok, err := r.Next()
		if err != nil {
			r.Close()
			return err
		}
		if !ok {
			r.Close()
			return fmt.Errorf("native: rebuilt spill partition %s has %d pages, resuming at %d: %w",
				sr.side.w.Path(), i, sr.delivered, cause)
		}
		sr.m.Release(pg)
	}
	sr.r = r
	return nil
}

// appendPageEntries decodes a spilled page's slot area back into join
// entries. Refs address the pool buffer the page sits in, so they are
// valid exactly while the page is held — the chunk loop's pin
// discipline.
func appendPageEntries(dst []Entry, data []byte, pg spill.Page) []Entry {
	v := pg.View()
	base := v.Addr - arena.Base
	n := int(binary.LittleEndian.Uint16(data[base:]))
	slot := base + uint64(v.Size) - uint64(storage.SlotSize)
	for i := 0; i < n; i++ {
		off := binary.LittleEndian.Uint16(data[slot+storage.SlotOffOffset:])
		code := binary.LittleEndian.Uint32(data[slot+storage.SlotOffHash:])
		ref := v.Addr + arena.Addr(off)
		dst = append(dst, Entry{
			Code: code,
			Key:  binary.LittleEndian.Uint32(data[ref-arena.Base:]),
			Ref:  ref,
		})
		slot -= uint64(storage.SlotSize)
	}
	return dst
}
