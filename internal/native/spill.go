package native

import (
	"context"
	"encoding/binary"
	"sync"

	"hashjoin/internal/arena"
	"hashjoin/internal/plan"
	"hashjoin/internal/spill"
	"hashjoin/internal/storage"
)

// Out-of-core tier of the degradation ladder. A pair that is still over
// budget when recursive re-partitioning runs out of depth or hash bits —
// irreducible duplicate-code skew — no longer fails: it is spilled to
// disk through internal/spill and joined in build-side chunks, each
// chunk's hash table sized to the budget, with the probe partition
// streamed past every chunk (the classic GRACE fallback, §2 of the
// paper, with the write-behind/read-ahead overlap iosim models). The
// reducible path therefore never returns *BudgetError; only Config.
// NoSpill restores the old failure mode.

// spillChunkPagesCap bounds how many build pages one chunk pins, so a
// huge budget does not translate into a huge buffer pool.
const spillChunkPagesCap = 256

// spillState is the per-Join spill coordinator, shared by all morsel
// workers of one Joiner.Join call. The Manager (and its temp directory)
// is created lazily on the first spill; mu serializes spilled pairs —
// one spilled pair joins at a time, while other workers keep draining
// in-memory pairs. That serialization is what makes the buffer pool
// sizing safe and the spill path's arena allocations single-threaded
// relative to each other.
type spillState struct {
	a          *arena.Arena
	dir        string
	workers    int
	buildWidth int
	probeWidth int
	budget     int
	pageSize   int             // 0: spill.DefaultPageSize
	ctx        context.Context // nil: never cancelled

	mu    sync.Mutex
	m     *spill.Manager
	merr  error // sticky Manager creation failure
	pairs int   // partition pairs that went through the spill tier
}

// newSpillState returns the spill coordinator for a join, or nil when
// spilling is disabled or the schemas cannot round-trip through slotted
// pages (variable width, or no leading 4-byte key to re-decode).
func newSpillState(build, probe *storage.Relation, cfg Config) *spillState {
	if cfg.NoSpill {
		return nil
	}
	bs, ps := build.Schema, probe.Schema
	if bs.HasVar() || ps.HasVar() || bs.FixedWidth() < 4 || ps.FixedWidth() < 4 {
		return nil
	}
	workers := cfg.SpillWorkers
	if workers < 1 {
		workers = spill.DefaultWorkers
	}
	// The spill tier's page pool comes from the query's scratch arena
	// when one is set (multi-tenant: the carved window), else from the
	// arena the relations live in (single-query: same thing).
	scratch := cfg.Arena
	if scratch == nil {
		scratch = build.Arena()
	}
	return &spillState{
		a:          scratch,
		dir:        cfg.SpillDir,
		workers:    workers,
		buildWidth: bs.FixedWidth(),
		probeWidth: ps.FixedWidth(),
		budget:     cfg.MemBudget,
		pageSize:   cfg.SpillPageSize,
		ctx:        cfg.Ctx,
	}
}

// page returns the spill page size this state's Manager is (or will be)
// configured with: the explicit knob, or the spill default. chunkPages
// and manager both derive from it, so the chunk budget arithmetic and
// the Manager's actual pages can never disagree.
func (sp *spillState) page() int {
	if sp.pageSize > 0 {
		return sp.pageSize
	}
	return spill.DefaultPageSize
}

// chunkPages returns how many build pages one chunk pins: the largest
// count whose tuples' pages + entries + hash table fit the budget,
// clamped to [1, spillChunkPagesCap]. Even chunkPages == 1 always makes
// progress — that is why the spill tier cannot fail on size.
func (sp *spillState) chunkPages() int {
	pageSize := sp.page()
	perPage := pageSize +
		spill.PageCapacity(pageSize, sp.buildWidth)*(entrySize+rowHdrSize+sp.buildWidth+16)
	n := sp.budget / perPage
	if n < 1 {
		n = 1
	}
	if n > spillChunkPagesCap {
		n = spillChunkPagesCap
	}
	return n
}

// manager lazily creates the spill Manager; the failure is sticky so
// every spilled pair after a failed creation reports the same error
// instead of retrying the filesystem.
func (sp *spillState) manager() (*spill.Manager, error) {
	if sp.m == nil && sp.merr == nil {
		sp.m, sp.merr = spill.NewManager(spill.Config{
			Dir:       sp.dir,
			PageSize:  sp.page(),
			Workers:   sp.workers,
			PoolPages: sp.chunkPages() + 3*sp.workers + 4,
			A:         sp.a,
			Ctx:       sp.ctx,
		})
	}
	return sp.m, sp.merr
}

// finish closes the Manager — removing every spill file — and reports
// the harvested I/O stats and spilled pair count. Safe on a nil
// spillState and idempotent, so Joiner.Join can call it on both the
// normal return and the panic-unwind path.
func (sp *spillState) finish() (spill.Stats, int, error) {
	if sp == nil || sp.m == nil {
		return spill.Stats{}, 0, nil
	}
	st := sp.m.Stats()
	err := sp.m.Close()
	sp.m = nil
	return st, sp.pairs, err
}

// joinPairSpill joins one irreducible over-budget pair out of core:
// write both sides to disk partitions (write-behind), then for each
// build chunk that fits the budget, pin its pages, build a table over
// the decoded entries, and stream the probe partition past it
// (read-ahead). Output refs point into pinned pool pages, so the
// emit/sink path is identical to the in-memory join's.
func (j *pairJoiner) joinPairSpill(build, probe []Entry, shift uint, cfg Config) error {
	sp := j.spill
	sp.mu.Lock()
	defer sp.mu.Unlock()
	m, err := sp.manager()
	if err != nil {
		return err
	}
	sp.pairs++

	bw, err := sp.spillPartition(m, j.data, build, sp.buildWidth)
	if err != nil {
		return err
	}
	pw, err := sp.spillPartition(m, j.data, probe, sp.probeWidth)
	if err != nil {
		return err
	}

	chunkPages := sp.chunkPages()
	br := bw.OpenReader()
	defer br.Close()
	pinned := j.spillPinned[:0]
	defer func() {
		for _, p := range pinned {
			m.Release(p)
		}
		j.spillPinned = pinned[:0]
	}()
	var pr *spill.Reader
	defer func() {
		if pr != nil {
			pr.Close()
		}
	}()

	// Left outer/semi/anti cannot decide "unmatched" against one build
	// chunk, so the chunk loop runs with the deferred probe bitmap armed.
	// spillPartition writes probe entries in slice order and the reader
	// streams pages back in that order, so a probe row's stream position
	// equals its index in the probe slice — the same indexing the hybrid
	// resident prefix uses, which is what lets bits set before the
	// resident/spilled seam resolve here. The hybrid caller arms the
	// bitmap itself before its resident pass; deferProbe is then already
	// set and the arming (which would clear its bits) is skipped.
	if j.needsProbeBits() && !j.deferProbe {
		j.armProbeBits(len(probe))
	}
	defer func() { j.deferProbe = false; j.probeBase = 0 }()

	for {
		pinned = pinned[:0]
		j.spillBuild = j.spillBuild[:0]
		for len(pinned) < chunkPages {
			pg, ok, err := br.Next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			pinned = append(pinned, pg)
			j.spillBuild = appendPageEntries(j.spillBuild, j.data, pg)
		}
		if len(j.spillBuild) == 0 {
			break
		}
		j.buildSerial(j.spillBuild, shift, cfg.Scheme)

		pr = pw.OpenReader()
		pos := 0
		for {
			pg, ok, err := pr.Next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			j.spillProbe = appendPageEntries(j.spillProbe[:0], j.data, pg)
			j.probeBase = pos
			j.probeFor(j.spillProbe, cfg.Scheme)
			pos += len(j.spillProbe)
			m.Release(pg)
		}
		pr.Close()
		pr = nil
		// Each build row lives in exactly one chunk, so this chunk's
		// table can be swept for unmatched build rows right away.
		if j.joinType == plan.RightOuter {
			j.sweepUnmatchedBuild()
		}
		for _, p := range pinned {
			m.Release(p)
		}
	}
	if j.deferProbe {
		j.probeBase = 0
		j.finishProbeBits(probe)
	}
	return nil
}

// spillPartition writes one side's entries to a disk partition: tuple
// bytes plus the memoized hash code, exactly the slot layout the
// in-memory partition phase uses (§7.1), so nothing is recomputed on
// the way back in.
func (sp *spillState) spillPartition(m *spill.Manager, data []byte, entries []Entry, width int) (*spill.Writer, error) {
	w, err := m.NewWriter()
	if err != nil {
		return nil, err
	}
	for i := range entries {
		e := &entries[i]
		base := e.Ref - arena.Base
		if err := w.Append(data[base:base+uint64(width)], e.Code); err != nil {
			return nil, err
		}
	}
	if err := w.Finish(); err != nil {
		return nil, err
	}
	return w, nil
}

// appendPageEntries decodes a spilled page's slot area back into join
// entries. Refs address the pool buffer the page sits in, so they are
// valid exactly while the page is held — the chunk loop's pin
// discipline.
func appendPageEntries(dst []Entry, data []byte, pg spill.Page) []Entry {
	v := pg.View()
	base := v.Addr - arena.Base
	n := int(binary.LittleEndian.Uint16(data[base:]))
	slot := base + uint64(v.Size) - uint64(storage.SlotSize)
	for i := 0; i < n; i++ {
		off := binary.LittleEndian.Uint16(data[slot+storage.SlotOffOffset:])
		code := binary.LittleEndian.Uint32(data[slot+storage.SlotOffHash:])
		ref := v.Addr + arena.Addr(off)
		dst = append(dst, Entry{
			Code: code,
			Key:  binary.LittleEndian.Uint32(data[ref-arena.Base:]),
			Ref:  ref,
		})
		slot -= uint64(storage.SlotSize)
	}
	return dst
}
