// Package native is the repository's second execution backend: it runs
// the paper's hash join schemes — baseline, group prefetching (section
// 4), and software-pipelined prefetching (section 5) — directly on real
// memory with real wall-clock timing, instead of under the cycle-level
// simulator in internal/memsim.
//
// The two backends share the internal/storage slotted-page layout and
// the internal/hash hash codes memoized in partition slots, so for the
// same seeded workload they are output-compatible: identical NOutput and
// KeySum. What differs is what "time" means — the simulator charges
// cycles against a modeled hierarchy; this package lets the actual CPU,
// caches, and memory bus of the host produce the stalls the paper's
// techniques are designed to hide.
//
// The engine has three phases:
//
//  1. Partition: both relations are flattened into compact 16-byte
//     entries (hash code, join key, tuple address) and radix-partitioned
//     on the low bits of the memoized hash code — the GRACE fan-out,
//     sized so a build partition plus its hash table fits the configured
//     memory budget (or, when CacheBudget is set, the cache, which is
//     the paper's section 7.5 cache-partitioning comparator).
//  2. Build: each build partition is inserted into a flat hash table
//     laid out for cache-line locality: 32-byte bucket headers (two per
//     64-byte line) embedding the first cell inline, with overflow cells
//     in one shared slab addressed by index.
//  3. Probe: the per-tuple dependence chain (header -> overflow cells ->
//     matching build tuple) is restructured exactly as the paper's
//     sections 4-5 do — strip-mined G-tuple groups or a D-distance
//     software pipeline — issuing real PREFETCHT0 instructions on amd64
//     (pure-Go no-op fallback elsewhere; see prefetch_amd64.s).
//
// Partition pairs are joined under morsel-driven parallelism: a worker
// pool claims pairs from a shared atomic queue, so a skewed partition
// occupies one worker while the others drain the rest — unlike the
// round-robin assignment of internal/core.JoinPartitionsParallel, whose
// skew pathology is documented (and tested) there.
package native

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"hashjoin/internal/arena"
	"hashjoin/internal/plan"
	"hashjoin/internal/storage"
)

// Scheme selects a probe/build loop restructuring. The values mirror the
// simulator's core.Scheme for the three schemes that have a native
// meaning; simple prefetching (whole-page prefetch after a disk read)
// has no native analog beyond the hardware's own next-line prefetcher
// and is treated as Baseline by the engine.
type Scheme int

const (
	// Baseline processes one tuple's full dependence chain at a time.
	Baseline Scheme = iota
	// Group strip-mines the loop into G-tuple groups processed in
	// stages, prefetching each stage's references one stage ahead.
	Group
	// Pipelined runs stage s of tuple i-s*D in iteration i, keeping the
	// prefetch pipeline full across the whole input.
	Pipelined
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case Baseline:
		return "baseline"
	case Group:
		return "group"
	case Pipelined:
		return "pipelined"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// ParseScheme maps a command-line name to a Scheme. It reports ok=false
// for unknown names; Schemes lists the accepted values.
func ParseScheme(name string) (Scheme, bool) {
	switch name {
	case "baseline":
		return Baseline, true
	case "group":
		return Group, true
	case "pipelined":
		return Pipelined, true
	}
	return 0, false
}

// Schemes returns the accepted ParseScheme names.
func Schemes() []string { return []string{"baseline", "group", "pipelined"} }

// Config tunes a native join. The zero value selects Group with the
// native default parameters, a memory-budget fan-out, and one worker per
// CPU.
type Config struct {
	Scheme Scheme

	// JoinType selects the join's match semantics (inner, left/right
	// outer, left semi/anti); the zero value is plan.Inner, the legacy
	// behavior. The probe relation is the join's left input. See
	// jointype.go for the emission contract each type imposes on sinks.
	JoinType plan.JoinType

	// G is the group size for Scheme Group; 0 selects DefaultG. The
	// native optimum is bounded by the CPU's miss-handling parallelism
	// (~10-16 outstanding line fills), not by the paper's Theorem 1.
	G int
	// D is the prefetch distance for Scheme Pipelined; 0 selects
	// DefaultD.
	D int

	// Fanout forces the partition count (rounded up to a power of two).
	// 0 derives it from MemBudget. 1 joins the relations as one pair —
	// the paper's join-phase experiment setup.
	Fanout int

	// MemBudget is the GRACE memory budget in bytes: a build partition's
	// entries plus its hash table must fit. 0 defaults to 256 MB, which
	// keeps workloads up to tens of millions of tuples at fan-out 1 so
	// the probe loops face real cache misses, as in the paper's join
	// phase. Set it (or Fanout) low to reproduce cache-sized
	// partitioning, the section 7.5 comparator.
	MemBudget int

	// Workers bounds the morsel worker pool; 0 means GOMAXPROCS. The
	// pool never exceeds the partition count.
	Workers int

	// Pool, when non-nil, executes the morsel phase on a shared worker
	// pool instead of per-join goroutines — the multi-tenant scheduler's
	// hook. Workers then bounds this join's concurrent slots within the
	// shared pool, not a goroutine count.
	Pool Pool

	// Tenant and Weight identify the owning query for a shared Pool's
	// weighted round-robin interleaving. Ignored without a Pool.
	Tenant string
	Weight int

	// Arena, when non-nil, is the scratch arena for the join's own
	// allocations (the spill tier's page pool). nil uses the build
	// relation's arena — correct when one query owns that arena, wrong
	// under multi-tenancy, where scratch must come from the query's
	// carved window so one tenant's spill cannot eat a neighbor's budget.
	Arena *arena.Arena

	// SpillDir is the parent directory for the out-of-core tier's temp
	// files; "" means the OS temp directory. A pair that recursive
	// re-partitioning cannot bring under MemBudget (irreducible
	// duplicate-code skew) is spilled there and joined in budget-sized
	// build chunks instead of failing.
	SpillDir string
	// SpillWorkers is the write-behind worker count for spilled
	// partitions; <1 selects spill.DefaultWorkers.
	SpillWorkers int
	// SpillPageSize overrides the spill tier's page size in bytes; 0
	// selects spill.DefaultPageSize. The chunking arithmetic derives
	// from the same value, so shrinking pages never over-pins the
	// budget.
	SpillPageSize int
	// NoSpill disables the disk tier: an irreducible over-budget pair
	// then fails with *BudgetError, the pre-spill behavior.
	NoSpill bool

	// Hybrid selects the adaptive hybrid hash join for over-budget
	// pairs: partition pairs are ranked by measured build footprint
	// after the partition phase, pairs that fit MemBudget join resident
	// (claimed first), and oversized victims are split on an exact
	// code-frequency histogram — hash codes too hot to ever fit go
	// straight to the out-of-core tier, which itself keeps one
	// budget-sized build chunk resident — instead of spilling the whole
	// pair. See hybrid.go.
	Hybrid bool

	// BudgetNow, when non-nil in Hybrid mode, is sampled before each
	// pair claim and may shrink the effective budget below MemBudget —
	// the multi-tenant pressure signal. A planned-resident pair whose
	// footprint no longer fits is demoted to the out-of-core path
	// without restarting the join; pairs already being joined are never
	// interrupted. Ignored without Hybrid.
	BudgetNow func() int

	// Ctx cancels the join cooperatively: morsel workers check it before
	// claiming each partition pair and the spill tier checks it at page
	// boundaries, so a cancelled join stops within one pair claim or one
	// spill page of the signal and returns a *CancelError with partial
	// progress. nil means context.Background (never cancelled).
	Ctx context.Context
}

// Native default tuning parameters. Chosen empirically for modern amd64
// parts: G covers the ~dozen simultaneous line fills the memory system
// sustains; D spaces a prefetch far enough ahead of its visit to cover a
// DRAM access across 3 pipeline stages.
const (
	DefaultG = 24
	DefaultD = 8
)

func (c Config) normalized() Config {
	if c.Fanout > 1 {
		c.Fanout = nextPow2(c.Fanout)
	}
	if c.G < 1 {
		c.G = DefaultG
	}
	if c.D < 1 {
		c.D = DefaultD
	}
	if c.MemBudget <= 0 {
		c.MemBudget = 256 << 20
	}
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Ctx == nil {
		c.Ctx = context.Background()
	}
	return c
}

// Result reports a native join with its wall-clock phase breakdown.
type Result struct {
	NOutput int    // output tuples (matches) produced
	KeySum  uint64 // sum of build keys over all outputs, as in the simulator

	NPartitions int // partition pairs joined
	Workers     int // worker slots that served the morsel queue

	// PairsJoined counts the partition-pair morsels actually executed:
	// equal to NPartitions on success, fewer when an error or
	// cancellation cut the join short. The multi-tenant accounting
	// surfaces it as "morsels executed".
	PairsJoined int

	// RecursionDepth is the deepest recursive re-partitioning any pair
	// needed to fit MemBudget; 0 means every first-level pair fit.
	RecursionDepth int

	// SpilledPartitions counts the partition pairs the out-of-core tier
	// handled; 0 means the join stayed in memory. The byte counters and
	// stall times below are the spill subsystem's I/O totals: WriteStall
	// is encode-side waiting the write-behind workers failed to hide,
	// ReadStall the probe-side waiting read-ahead failed to hide.
	SpilledPartitions int
	SpillBytesWritten int64
	SpillBytesRead    int64
	SpillWriteStall   time.Duration
	SpillReadStall    time.Duration

	// SpillFailovers counts spill directories declared failed mid-join
	// (writes moved to the next healthy directory); SpillRebuilds counts
	// partitions whose on-disk data was rebuilt from the in-memory
	// source after a failed or corrupt file. Both zero on a healthy run.
	SpillFailovers int64
	SpillRebuilds  int64

	// Hybrid is the adaptive hybrid hash join's pair accounting; zero
	// unless Config.Hybrid was set. See HybridStats.
	Hybrid HybridStats

	PartitionTime time.Duration // flatten + radix scatter, both relations
	JoinTime      time.Duration // all build+probe pairs (wall clock)
	Elapsed       time.Duration // end-to-end
}

// BudgetError reports a partition pair that could not be brought under
// the memory budget: recursive re-partitioning either hit its depth
// bound or ran out of hash bits (heavy key skew — identical codes cannot
// be split further). With the spill tier enabled (the default) such a
// pair is joined out of core instead; this error now occurs only under
// Config.NoSpill or for schemas slotted pages cannot round-trip.
type BudgetError struct {
	Budget int // configured MemBudget, bytes
	Need   int // estimated footprint of the irreducible pair
	// Depth is the deepest recursion level the failing pair's join
	// reached — including sibling sub-pairs that split successfully
	// before the irreducible one gave up.
	Depth int
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf(
		"native: partition pair needs ~%d bytes, budget %d: re-partitioning gave up at depth %d (skewed or infeasible budget)",
		e.Need, e.Budget, e.Depth)
}

func (e *BudgetError) Unwrap() error { return ErrOverBudget }

// Joiner is a resident join executor: it owns the partition scratch,
// hash tables, and per-worker state, and recycles them across Join
// calls. A process that joins repeatedly (benchmark repetitions, a
// query loop) should reuse one Joiner — allocating the tens of
// megabytes of entries and table afresh per join churns the garbage
// collector and, worse, pays the kernel's fresh-page population cost on
// every first touch, which can triple join times on virtualized hosts.
// A Joiner is not safe for concurrent use; its internal morsel workers
// are the intended parallelism.
type Joiner struct {
	bp, pp  partitions
	workers []*pairJoiner

	// plan, in Hybrid mode, orders the morsel queue resident-first and
	// carries the measured per-pair footprints the demotion check
	// consults; nil between calls and in non-hybrid joins.
	plan *hybridPlan

	// sinkFor, when set, provides each morsel worker with a match sink
	// (see JoinStream). Sinks are per-worker, so they need no locking.
	sinkFor func(worker int) func(build []byte, probeRef uint64)

	// spillSt coordinates the out-of-core tier for the Join call in
	// flight; nil between calls and when spilling is disabled.
	spillSt *spillState
}

// NewJoiner returns an empty Joiner; buffers grow on first use.
func NewJoiner() *Joiner { return &Joiner{} }

// Join runs a native hash join of build and probe. The relations must
// share one arena (they do when built through the public hashjoin API).
// A pair that exceeds cfg.MemBudget is re-partitioned recursively (see
// joinPairBudget); a pair that recursion cannot split — irreducible
// duplicate-code skew — is joined out of core through internal/spill,
// so Join fails with a *BudgetError only under cfg.NoSpill.
func (jn *Joiner) Join(build, probe *storage.Relation, cfg Config) (Result, error) {
	if build.Arena() != probe.Arena() {
		panic("native: build and probe relations use different arenas")
	}
	if build.Schema.HasVar() || build.Schema.FixedWidth() < 4 {
		panic("native: row storage requires a fixed-width build schema with a leading uint32 key")
	}
	cfg = cfg.normalized()
	data := build.Arena().Data()
	width := build.Schema.FixedWidth()

	sp := newSpillState(build, probe, cfg)
	jn.spillSt = sp
	// The deferred finish covers the panic path (arena exhaustion
	// unwinding through a sink): temp files are removed before the panic
	// crosses the Joiner boundary. On the normal path the explicit
	// finish below already closed the Manager, and this one is a no-op.
	defer func() {
		jn.spillSt = nil
		sp.finish()
	}()

	start := time.Now()
	if err := cfg.Ctx.Err(); err != nil {
		return Result{}, asCancel(err, 0, 0, 0)
	}
	fanout := cfg.Fanout
	if fanout == 0 {
		fanout = fanoutFor(build.NTuples, width, cfg.MemBudget)
	}
	jn.bp.fill(data, build, fanout)
	jn.pp.fill(data, probe, fanout)
	if cfg.Hybrid {
		jn.plan = planHybrid(&jn.bp, width, cfg.MemBudget)
	}
	defer func() { jn.plan = nil }()
	partDone := time.Now()

	r, err := jn.joinPairs(data, width, cfg)
	spStats, spPairs, spErr := sp.finish()
	if err == nil {
		err = spErr
	}
	if err != nil {
		var ce *CancelError
		if errors.As(err, &ce) {
			ce.Elapsed = time.Since(start)
		}
		return Result{}, err
	}
	end := time.Now()

	r.NPartitions = jn.bp.fanout()
	r.SpilledPartitions = spPairs
	r.SpillBytesWritten = spStats.BytesWritten
	r.SpillBytesRead = spStats.BytesRead
	r.SpillWriteStall = spStats.WriteStall
	r.SpillReadStall = spStats.ReadStall
	r.SpillFailovers = spStats.Failovers
	r.SpillRebuilds = spStats.Rebuilds
	r.PartitionTime = partDone.Sub(start)
	r.JoinTime = end.Sub(partDone)
	r.Elapsed = end.Sub(start)
	return r, nil
}

// Join is the convenience one-shot form: a throwaway Joiner. Prefer a
// reused Joiner when joining more than once.
func Join(build, probe *storage.Relation, cfg Config) (Result, error) {
	return NewJoiner().Join(build, probe, cfg)
}

// JoinStream is Join with match emission: sinkFor(w) returns worker w's
// sink, which receives every validated match that worker produces — the
// build row's serialized key+payload bytes (valid only for the duration
// of the call) and the probe tuple's address. Each worker calls only
// its own sink, so sinks need no synchronization among themselves;
// JoinStream returns only after all workers (and therefore all sink
// calls) have finished. This is how the batch engine runs a partitioned
// native join inside an operator pipeline: the sinks pack matches into
// output batches for the parent operator.
func (jn *Joiner) JoinStream(build, probe *storage.Relation, cfg Config, sinkFor func(worker int) func(build []byte, probeRef uint64)) (Result, error) {
	jn.sinkFor = sinkFor
	defer func() { jn.sinkFor = nil }()
	return jn.Join(build, probe, cfg)
}

// pairFootprint estimates the resident bytes a build partition of n
// tuples of width serialized bytes needs during its join: the entry
// array, the row (header + key + payload), and an amortized two
// directory slots per tuple (the directory is the next power of two
// above the row count). fanoutFor and the recursive re-partitioner
// share this estimate so the initial fan-out and the degradation path
// agree on what "fits" means.
func pairFootprint(nBuild, width int) int {
	return nBuild * (entrySize + rowHdrSize + width + 16)
}

// BuildFootprint estimates the resident bytes a build side of nBuild
// tuples of width serialized bytes needs while being joined: entries
// plus row table. The batch engine consults it to decide whether a
// streaming (single-table) join fits a memory budget or must degrade to
// the partitioned strategy.
func BuildFootprint(nBuild, width int) int { return pairFootprint(nBuild, width) }

// fanoutFor picks the smallest power-of-two partition count such that a
// build partition's entries plus its row table fit budget bytes. Like
// subFanoutFor it compares in divide form: budget*f overflows int for
// large budgets and would inflate the fan-out spuriously.
func fanoutFor(nBuild, width, budget int) int {
	need := pairFootprint(nBuild, width)
	f := 1
	for f < 1<<20 && overBudget(need, budget, f) {
		f <<= 1
	}
	return f
}
