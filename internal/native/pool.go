package native

import (
	"sync"
	"sync/atomic"
)

// The morsel execution contract, factored out of joinPairs so a join's
// partition-pair work can run either on its own goroutines (localPool,
// the single-query behavior) or on a process-wide shared pool that
// interleaves morsels from many concurrent joins (internal/sched.Pool).
// The join supplies the work as data — morsel count, slot count, a Run
// function — and the pool supplies the goroutines.

// MorselJob is one join's batch of independent morsels (partition
// pairs). Run(slot, morsel) executes one morsel using the per-slot
// state (pairJoiner) identified by slot; it must be safe to call
// concurrently for distinct slots.
//
// A Pool executing the job guarantees:
//   - each morsel in [0, N) runs at most once;
//   - a given slot in [0, Slots) never has two Run calls in flight;
//   - after any Run returns an error, no new morsel is issued;
//   - Do returns the first error once every in-flight Run has finished,
//     so the job's slot state is quiescent when Do returns.
//
// Morsels a pool never issued (error or cancellation cut the job short)
// are simply not run; the join layer reports partial progress through
// its own accounting.
type MorselJob struct {
	// Tenant and Weight identify the owning query for fair scheduling;
	// a shared pool interleaves claims across jobs by weighted round-
	// robin. localPool ignores them.
	Tenant string
	Weight int

	N     int // morsels to execute
	Slots int // distinct slot states available; >= 1

	Run func(slot, morsel int) error
}

// Pool executes morsel jobs. Implementations must honor the contract
// documented on MorselJob.
type Pool interface {
	Do(job *MorselJob) error
}

// localPool is the default Pool: one goroutine per slot, dedicated to
// this job — the original per-query fan-out. With one slot the job runs
// inline on the caller's goroutine.
type localPool struct{}

func (localPool) Do(job *MorselJob) error {
	if job.N <= 0 {
		return nil
	}
	if job.Slots <= 1 {
		for i := 0; i < job.N; i++ {
			if err := job.Run(0, i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, job.Slots) // written only by the owning slot
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < job.Slots; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= job.N {
					return
				}
				if err := job.Run(w, i); err != nil {
					errs[w] = err
					failed.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
