package native

import (
	"encoding/binary"
	"math/bits"
	"sync/atomic"
	"unsafe"

	"hashjoin/internal/arena"
)

// Hash table v2: compact row storage. Instead of a table of (code, ref)
// cells that sends every probe hit back through storage.Relation for
// the key, each build tuple is serialized once into a self-contained
// row and the table becomes a flat directory of chain heads:
//
//	row :=  next_row_ptr | null_map | hash_code | key+payload
//	        8 bytes        4 bytes    4 bytes     width bytes
//
// Probes walk the chain comparing hash codes and keys in-row — one
// dependent load per chain step instead of two — and matches hand the
// caller the serialized row bytes directly. The null_map slot is all
// zeros today (inner join) and reserves the layout for outer/semi/anti
// joins, where a bitmap of NULL key columns must travel with the row.
//
// The layout also unlocks a concurrent build: workers serialize
// disjoint row ranges without coordination (each row's bytes are
// written exactly once, by one worker), then publish rows into the
// shared directory with a compare-and-swap on the chain head. Chain
// order then depends on CAS timing, so a concurrently built table
// equals a serially built one as a multiset of rows per bucket — which
// is exactly the join-output contract (matches are unordered across
// workers already).
//
// Rows live in one Go-heap slab addressed by byte offset, with offset 0
// reserved as the nil chain terminator. Keeping the slab off the bump
// arena is deliberate: a finished table can outlive the query that
// built it (see BuildSide), while arena windows are reclaimed the
// moment their query releases.

const (
	// rowHdrSize is the fixed per-row header: next_row_ptr (8) +
	// null_map (4) + hash_code (4). The serialized key+payload follows.
	rowHdrSize = 16
	rowNullOff = 8
	rowCodeOff = 12
	rowKeyOff  = 16

	// rowSlabPad keeps row offset 0 unused so it can mean "end of chain".
	rowSlabPad = 8

	// Reset shrinks a slab or directory only when its capacity exceeds
	// rowShrinkFactor times the new need and the floor below; a table
	// bouncing between similar sizes keeps its allocation.
	rowShrinkFactor = 4
	rowSlabFloor    = 1 << 12 // bytes
	rowDirFloor     = 1 << 9  // directory slots
)

// RowTable is the v2 native hash table: serialized rows chained through
// next_row_ptr from a directory of bucket heads. Bucket numbers come
// from the hash code's bits above the radix bits consumed by the
// partitioner, as in the v1 table.
type RowTable struct {
	rows    []byte   // row slab; offset 0 is the nil sentinel
	dir     []uint64 // bucket heads: row offsets, 0 = empty
	width   int      // serialized key+payload bytes per row
	rowSize int      // rowHdrSize + width
	nRows   int
	shift   uint   // radix bits consumed by the partitioner
	mask    uint32 // len(dir)-1
}

// Reset re-sizes and clears the table for nRows build tuples of width
// serialized bytes each, reusing the slab and directory across
// partition pairs. Capacities far above the new need are released (the
// v1 table's Reset kept a skewed pair's allocation forever).
func (t *RowTable) Reset(nRows, width int, shift uint) {
	if nRows < 1 {
		nRows = 1
	}
	nb := 1 << uint(bits.Len(uint(nRows-1)))
	if nb <= cap(t.dir) && cap(t.dir) <= max(rowShrinkFactor*nb, rowDirFloor) {
		t.dir = t.dir[:nb]
		clear(t.dir)
	} else {
		t.dir = make([]uint64, nb)
	}
	t.width = width
	t.rowSize = rowHdrSize + width
	t.nRows = nRows
	need := rowSlabPad + nRows*t.rowSize
	if need <= cap(t.rows) && cap(t.rows) <= max(rowShrinkFactor*need, rowSlabFloor) {
		t.rows = t.rows[:need]
	} else {
		t.rows = make([]byte, need)
	}
	t.shift = shift
	t.mask = uint32(nb - 1)
}

// NRows returns the row count the table was Reset for.
func (t *RowTable) NRows() int { return t.nRows }

// Width returns the serialized key+payload bytes per row.
func (t *RowTable) Width() int { return t.width }

// Bytes returns the table's resident footprint: row slab plus directory.
func (t *RowTable) Bytes() int { return len(t.rows) + 8*len(t.dir) }

// bucket maps a hash code to its directory slot.
func (t *RowTable) bucket(code uint32) uint32 { return (code >> t.shift) & t.mask }

// rowOff returns the slab offset of row i.
func (t *RowTable) rowOff(i int) uint64 { return uint64(rowSlabPad + i*t.rowSize) }

// SerializeRange materializes rows [lo, hi) from their entries: the
// hash code, a zero null_map, and the tuple's key+payload bytes copied
// out of the arena. Disjoint ranges touch disjoint slab bytes, so
// concurrent workers serialize without coordination. next_row_ptr is
// left untouched; insertion writes it before publishing.
func (t *RowTable) SerializeRange(data []byte, entries []Entry, lo, hi int) {
	w := uint64(t.width)
	for i := lo; i < hi; i++ {
		e := &entries[i]
		off := t.rowOff(i)
		row := t.rows[off : off+uint64(t.rowSize)]
		binary.LittleEndian.PutUint32(row[rowNullOff:], 0)
		binary.LittleEndian.PutUint32(row[rowCodeOff:], e.Code)
		base := e.Ref - arena.Base
		copy(row[rowKeyOff:], data[base:base+w])
	}
}

// InsertRange publishes serialized rows [lo, hi) into the directory
// with a lock-free CAS on each bucket head, chaining through
// next_row_ptr. Safe to run concurrently with other InsertRange calls
// over disjoint ranges; every SerializeRange must have completed first
// (the build phases are separated by a pool barrier). The scheme
// selects the paper's build-loop prefetching, applied to the directory
// slots the CAS will touch.
func (t *RowTable) InsertRange(lo, hi int, scheme Scheme, g, d int) {
	switch scheme {
	case Group:
		for glo := lo; glo < hi; glo += g {
			ghi := glo + g
			if ghi > hi {
				ghi = hi
			}
			for i := glo; i < ghi; i++ {
				prefetchT0(unsafe.Pointer(&t.dir[t.bucket(t.rowCode(i))]))
			}
			for i := glo; i < ghi; i++ {
				t.casInsert(t.rowOff(i))
			}
		}
	case Pipelined:
		for i := lo; i < hi; i++ {
			if n := i + d; n < hi {
				prefetchT0(unsafe.Pointer(&t.dir[t.bucket(t.rowCode(n))]))
			}
			t.casInsert(t.rowOff(i))
		}
	default:
		for i := lo; i < hi; i++ {
			t.casInsert(t.rowOff(i))
		}
	}
}

// rowCode reads row i's hash code from the slab.
func (t *RowTable) rowCode(i int) uint32 {
	return binary.LittleEndian.Uint32(t.rows[t.rowOff(i)+rowCodeOff:])
}

// casInsert links the row at off onto its bucket chain: store the
// current head into next_row_ptr, then CAS the head to off. The next
// write is plain — the row is unpublished (invisible to other workers)
// until the CAS lands, and probes start only after the build barrier.
func (t *RowTable) casInsert(off uint64) {
	code := binary.LittleEndian.Uint32(t.rows[off+rowCodeOff:])
	slot := &t.dir[t.bucket(code)]
	for {
		head := atomic.LoadUint64(slot)
		binary.LittleEndian.PutUint64(t.rows[off:], head)
		if atomic.CompareAndSwapUint64(slot, head, off) {
			return
		}
	}
}

// insertSerialRange is casInsert's single-owner fast path: plain loads
// and stores, same chain discipline (new rows prepend, so chains hold
// later-inserted rows first).
func (t *RowTable) insertSerialRange(lo, hi int) {
	for i := lo; i < hi; i++ {
		off := t.rowOff(i)
		code := binary.LittleEndian.Uint32(t.rows[off+rowCodeOff:])
		b := t.bucket(code)
		binary.LittleEndian.PutUint64(t.rows[off:], t.dir[b])
		t.dir[b] = off
	}
}

// BuildSerial serializes and inserts all entries on the calling
// goroutine — the morsel-worker path, where each worker owns its table
// outright. The scheme applies the paper's build-loop restructuring to
// the directory-slot accesses: Group prefetches a G-batch of slots
// before its inserts, Pipelined keeps a slot prefetch D inserts ahead.
func (t *RowTable) BuildSerial(data []byte, entries []Entry, scheme Scheme, g, d int) {
	n := len(entries)
	t.SerializeRange(data, entries, 0, n)
	switch scheme {
	case Group:
		for lo := 0; lo < n; lo += g {
			hi := lo + g
			if hi > n {
				hi = n
			}
			for i := lo; i < hi; i++ {
				prefetchT0(unsafe.Pointer(&t.dir[t.bucket(entries[i].Code)]))
			}
			t.insertSerialRange(lo, hi)
		}
	case Pipelined:
		for i := 0; i < n; i++ {
			if nx := i + d; nx < n {
				prefetchT0(unsafe.Pointer(&t.dir[t.bucket(entries[nx].Code)]))
			}
			t.insertSerialRange(i, i+1)
		}
	default:
		t.insertSerialRange(0, n)
	}
}

// LookupRows calls fn for every row in code's bucket whose stored hash
// code equals code, passing the row's serialized key+payload bytes.
// Exported for tests and the fuzz oracle; the measured probe loops in
// join.go inline this walk with prefetching.
func (t *RowTable) LookupRows(code uint32, fn func(row []byte)) {
	w := uint64(t.width)
	for off := t.dir[t.bucket(code)]; off != 0; {
		next := binary.LittleEndian.Uint64(t.rows[off:])
		if binary.LittleEndian.Uint32(t.rows[off+rowCodeOff:]) == code {
			fn(t.rows[off+rowKeyOff : off+rowKeyOff+w])
		}
		off = next
	}
}
