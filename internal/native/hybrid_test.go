package native

import (
	"errors"
	"math"
	"sync/atomic"
	"testing"

	"hashjoin/internal/arena"
	"hashjoin/internal/fault"
	"hashjoin/internal/spill"
	"hashjoin/internal/workload"
)

// TestSubFanoutOverflowRegression pins the divide-form fan-out search
// against the integer overflow the multiplied form suffered: with a
// near-MaxInt budget, budget*sub wraps negative and the old comparison
// need > budget*sub held forever, inflating the sub-fan-out to its 256
// cap for a pair that two-way or four-way splitting already brings
// under budget.
func TestSubFanoutOverflowRegression(t *testing.T) {
	// ceil(MaxInt/2) is one over MaxInt/2, so a two-way split still
	// exceeds the budget and a four-way split fits: the answer is 4.
	// The overflowing comparison returned 256.
	if got := subFanoutFor(math.MaxInt, math.MaxInt/2, 32); got != 4 {
		t.Fatalf("subFanoutFor(MaxInt, MaxInt/2, 32) = %d, want 4", got)
	}
	// The bits-left cap still applies after the search.
	if got := subFanoutFor(math.MaxInt, 1, 3); got != 8 {
		t.Fatalf("subFanoutFor(MaxInt, 1, 3) = %d, want 8", got)
	}
	if got := subFanoutFor(1024, 512, 32); got != 2 {
		t.Fatalf("subFanoutFor(1024, 512, 32) = %d, want 2", got)
	}
	// overBudget is exact at the boundary: equality fits.
	if overBudget(math.MaxInt, math.MaxInt, 1) {
		t.Fatal("overBudget(MaxInt, MaxInt, 1) = true, want false")
	}
	if !overBudget(math.MaxInt, math.MaxInt/2, 2) {
		t.Fatal("overBudget(MaxInt, MaxInt/2, 2) = false, want true")
	}
	// fanoutFor shares the guard: a near-MaxInt budget keeps fan-out 1.
	if got := fanoutFor(100000, 8, math.MaxInt/2); got != 1 {
		t.Fatalf("fanoutFor(100000, 8, MaxInt/2) = %d, want 1", got)
	}
}

// TestJoinPairBudgetDepthOnError pins the error path's depth reporting:
// when one subtree recurses deep and succeeds before a sibling gives up
// shallow, both the returned depth and the *BudgetError must carry the
// deepest level actually reached, not just the failing sub-call's. The
// workload: three entries whose codes differ only at bits 12-13 force a
// successful depth-6 descent in sub-bucket 0 (one-bit splits from shift
// 8 separate them at bit 12), while 257 copies of code 0xFFFFFFFF in
// sub-bucket 255 — processed after the success — exhaust all 32 hash
// bits in 8-bit splits and fail at depth 4.
func TestJoinPairBudgetDepthOnError(t *testing.T) {
	a := arena.New(1 << 20)
	codes := []uint32{0x0, 0x1000, 0x2000}
	for i := 0; i < 257; i++ {
		codes = append(codes, 0xFFFFFFFF)
	}
	es := mkEntries(t, a, codes)
	j := newPairJoiner()
	j.data = a.Data()
	j.width = 8
	budget := pairFootprint(2, 8) // two entries fit, three do not
	cfg := Config{Scheme: Group, MemBudget: budget, NoSpill: true}.normalized()
	j.g, j.d = cfg.G, cfg.D

	depth, err := j.joinPairBudget(es, es, 0, cfg, 0)
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("error %T (%v), want *BudgetError", err, err)
	}
	if depth != 6 {
		t.Fatalf("returned depth = %d, want 6 (deepest successful subtree)", depth)
	}
	if be.Depth != 6 {
		t.Fatalf("BudgetError.Depth = %d, want 6 (deepest level reached)", be.Depth)
	}
}

// TestChunkPagesUsesConfiguredPageSize asserts the invariant satellite
// fix: the chunk budget arithmetic derives from the page size the
// Manager is actually configured with, not a hard-coded default, so a
// page-size override can never over-pin the budget.
func TestChunkPagesUsesConfiguredPageSize(t *testing.T) {
	perChunk := func(pageSize, width, budget int) int {
		perPage := pageSize + spill.PageCapacity(pageSize, width)*(entrySize+rowHdrSize+width+16)
		n := budget / perPage
		if n < 1 {
			n = 1
		}
		if n > spillChunkPagesCap {
			n = spillChunkPagesCap
		}
		return n
	}

	a := arena.New(16 << 20)
	sp := &spillState{
		a: a, dir: t.TempDir(), workers: 1,
		buildWidth: 8, probeWidth: 8,
		budget: 1 << 20, pageSize: 4096,
	}
	if got, want := sp.chunkPages(), perChunk(4096, 8, 1<<20); got != want {
		t.Fatalf("chunkPages with 4K pages = %d, want %d", got, want)
	}
	m, err := sp.manager()
	if err != nil {
		t.Fatalf("manager: %v", err)
	}
	if m.PageSize() != 4096 {
		t.Fatalf("Manager page size = %d, want the configured 4096", m.PageSize())
	}
	// The invariant: chunk arithmetic and Manager agree on the page size.
	if got, want := sp.chunkPages(), perChunk(m.PageSize(), sp.buildWidth, sp.budget); got != want {
		t.Fatalf("chunkPages = %d, want %d derived from Manager page size %d", got, want, m.PageSize())
	}
	if _, _, err := sp.finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}

	// Zero pageSize (older struct literals, no knob) keeps the default.
	sp0 := &spillState{buildWidth: 8, budget: 1 << 20}
	if got, want := sp0.chunkPages(), perChunk(spill.DefaultPageSize, 8, 1<<20); got != want {
		t.Fatalf("chunkPages with default pages = %d, want %d", got, want)
	}
}

// hybridSpec is a Zipf build-side workload whose hottest ranks overflow
// the test budget while the cold tail stays resident, so every hybrid
// run crosses the resident/spilled boundary in both directions.
var hybridSpec = workload.Spec{
	NBuild: 4000, TupleSize: 32, ZipfS: 1.2, ZipfKeys: 64, Seed: 9,
}

const hybridBudget = 32 << 10

func hybridCfg(dir string) Config {
	return Config{
		Scheme: Group, Fanout: 8, Workers: 2,
		MemBudget: hybridBudget, SpillDir: dir, Hybrid: true,
	}
}

// TestJoinHybridZipfParity runs the Zipf boundary workload through the
// hybrid tier and checks exact output parity against the unbudgeted
// reference and the spill-everything tier, that pairs actually landed
// on both sides of the boundary, and that the hybrid join's spill I/O
// never exceeds the spill-everything tier's.
func TestJoinHybridZipfParity(t *testing.T) {
	a := arena.New(workload.ArenaBytesFor(hybridSpec) + 4<<20)
	pair := workload.Generate(a, hybridSpec)
	dir := t.TempDir()
	base := fault.Goroutines()
	mark := a.Used()

	jn := NewJoiner()
	ref, err := jn.Join(pair.Build, pair.Probe, Config{Scheme: Group, Fanout: 8})
	if err != nil {
		t.Fatalf("reference join: %v", err)
	}
	if ref.NOutput != pair.ExpectedMatches || ref.KeySum != pair.KeySum {
		t.Fatalf("reference join got (%d, %d), want (%d, %d)",
			ref.NOutput, ref.KeySum, pair.ExpectedMatches, pair.KeySum)
	}

	a.Truncate(mark)
	cfg := hybridCfg(dir)
	cfg.Hybrid = false
	grace, err := jn.Join(pair.Build, pair.Probe, cfg)
	if err != nil {
		t.Fatalf("spill-everything join: %v", err)
	}
	if grace.NOutput != ref.NOutput || grace.KeySum != ref.KeySum {
		t.Fatalf("spill-everything join got (%d, %d), want (%d, %d)",
			grace.NOutput, grace.KeySum, ref.NOutput, ref.KeySum)
	}
	if grace.SpilledPartitions == 0 {
		t.Fatal("spill-everything run spilled nothing; workload does not cross the boundary")
	}

	a.Truncate(mark)
	hr, err := jn.Join(pair.Build, pair.Probe, hybridCfg(dir))
	if err != nil {
		t.Fatalf("hybrid join: %v", err)
	}
	if hr.NOutput != ref.NOutput || hr.KeySum != ref.KeySum {
		t.Fatalf("hybrid join got (%d, %d), want (%d, %d)",
			hr.NOutput, hr.KeySum, ref.NOutput, ref.KeySum)
	}
	if hr.Hybrid.ResidentPairs == 0 || hr.Hybrid.SpilledPairs == 0 {
		t.Fatalf("hybrid pairs resident=%d spilled=%d; want both sides of the boundary",
			hr.Hybrid.ResidentPairs, hr.Hybrid.SpilledPairs)
	}
	if hr.SpilledPartitions == 0 {
		t.Fatal("hybrid run never reached the disk tier")
	}
	hio := hr.SpillBytesWritten + hr.SpillBytesRead
	gio := grace.SpillBytesWritten + grace.SpillBytesRead
	if hio > gio {
		t.Fatalf("hybrid spill I/O %d exceeds spill-everything %d", hio, gio)
	}
	if hio == 0 || gio == 0 {
		t.Fatalf("degenerate I/O volumes: hybrid %d, spill-everything %d", hio, gio)
	}
	fault.CheckGoroutines(t, base)
	fault.CheckNoFiles(t, dir)
}

// TestJoinHybridDemotion shrinks the advisory budget after the first
// pair claim — the multi-tenant pressure signal — and checks that
// planned-resident pairs are demoted to the out-of-core path without
// restarting the join: exact parity, demotions accounted, no leaks.
func TestJoinHybridDemotion(t *testing.T) {
	a := arena.New(workload.ArenaBytesFor(hybridSpec) + 4<<20)
	pair := workload.Generate(a, hybridSpec)
	dir := t.TempDir()
	base := fault.Goroutines()

	var claims atomic.Int64
	cfg := hybridCfg(dir)
	cfg.Workers = 1 // deterministic claim order: one pair per sample
	cfg.BudgetNow = func() int {
		if claims.Add(1) == 1 {
			return hybridBudget
		}
		return pairFootprint(4, 32) // a handful of entries: everything demotes
	}
	r, err := Join(pair.Build, pair.Probe, cfg)
	if err != nil {
		t.Fatalf("hybrid join under pressure: %v", err)
	}
	if r.NOutput != pair.ExpectedMatches || r.KeySum != pair.KeySum {
		t.Fatalf("demoted join got (%d, %d), want (%d, %d)",
			r.NOutput, r.KeySum, pair.ExpectedMatches, pair.KeySum)
	}
	if r.Hybrid.DemotedPairs == 0 || r.Hybrid.BytesDemoted == 0 {
		t.Fatalf("no demotions recorded (demoted=%d bytes=%d) despite the shrunken budget",
			r.Hybrid.DemotedPairs, r.Hybrid.BytesDemoted)
	}
	if r.SpilledPartitions == 0 {
		t.Fatal("demoted pairs never reached the disk tier")
	}
	fault.CheckGoroutines(t, base)
	fault.CheckNoFiles(t, dir)
}

// TestJoinHybridDemotionFault injects a spill-write fault into a
// demotion mid-join: the demoted pair's first page write fails, and the
// join must surface exactly one typed error with no partial output, no
// leaked goroutines, and an empty spill directory — then work again.
func TestJoinHybridDemotionFault(t *testing.T) {
	defer fault.Reset()
	a := arena.New(workload.ArenaBytesFor(hybridSpec) + 4<<20)
	pair := workload.Generate(a, hybridSpec)
	dir := t.TempDir()
	base := fault.Goroutines()
	mark := a.Used()

	var claims atomic.Int64
	cfg := hybridCfg(dir)
	cfg.Workers = 1
	cfg.BudgetNow = func() int {
		if claims.Add(1) == 1 {
			return hybridBudget
		}
		return pairFootprint(4, 32)
	}
	fault.Enable(fault.SiteSpillWrite, fault.Fault{Kind: fault.KindError})
	jn := NewJoiner()
	r, err := jn.Join(pair.Build, pair.Probe, cfg)
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("error %v, want injected-fault class", err)
	}
	if r.NOutput != 0 || r.KeySum != 0 {
		t.Fatalf("failed join leaked partial output (%d, %d)", r.NOutput, r.KeySum)
	}
	fault.CheckGoroutines(t, base)
	fault.CheckNoFiles(t, dir)

	fault.Reset()
	a.Truncate(mark)
	claims.Store(0)
	r2, err := jn.Join(pair.Build, pair.Probe, cfg)
	if err != nil {
		t.Fatalf("join after injected fault: %v", err)
	}
	if r2.NOutput != pair.ExpectedMatches || r2.KeySum != pair.KeySum {
		t.Fatalf("post-fault join got (%d, %d), want (%d, %d)",
			r2.NOutput, r2.KeySum, pair.ExpectedMatches, pair.KeySum)
	}
	fault.CheckNoFiles(t, dir)
}
