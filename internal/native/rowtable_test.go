package native

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
	"testing"

	"hashjoin/internal/arena"
	"hashjoin/internal/hash"
	"hashjoin/internal/workload"
)

// buildEntriesFor generates a workload into a fresh arena and flattens
// the build side, returning everything a RowTable build needs.
func buildEntriesFor(t testing.TB, spec workload.Spec) (data []byte, build, probe []Entry, pair *workload.Pair) {
	t.Helper()
	a := arena.New(workload.ArenaBytesFor(spec) + 1<<20)
	pair = workload.Generate(a, spec)
	data = a.Data()
	return data, Flatten(pair.Build, nil), Flatten(pair.Probe, nil), pair
}

// bucketRows collects the table's contents as a per-bucket multiset:
// for each directory slot, the sorted serialized rows (code + key +
// payload; next_row_ptr excluded, since chain order and slab placement
// are allowed to differ between serial and concurrent builds).
func bucketRows(t *RowTable) [][]string {
	out := make([][]string, len(t.dir))
	for b := range t.dir {
		var rows []string
		for off := t.dir[b]; off != 0; {
			next := binary.LittleEndian.Uint64(t.rows[off:])
			rows = append(rows, string(t.rows[off+rowNullOff:off+uint64(t.rowSize)]))
			off = next
		}
		sort.Strings(rows)
		out[b] = rows
	}
	return out
}

func TestRowTableLookupOracle(t *testing.T) {
	data, build, probe, _ := buildEntriesFor(t, workload.Spec{
		NBuild: 3000, TupleSize: 20, MatchesPerBuild: 2, PctMatched: 80, Seed: 21, Skew: 64,
	})
	tbl := &RowTable{}
	tbl.Reset(len(build), 20, 0)
	tbl.BuildSerial(data, build, Group, DefaultG, DefaultD)

	// Oracle: key -> number of build tuples carrying it.
	oracle := map[uint32]int{}
	for _, e := range build {
		oracle[e.Key]++
	}
	for _, e := range probe {
		got := 0
		tbl.LookupRows(e.Code, func(row []byte) {
			if binary.LittleEndian.Uint32(row) == e.Key {
				got++
			}
		})
		if got != oracle[e.Key] {
			t.Fatalf("key %#x: %d in-row matches, oracle says %d", e.Key, got, oracle[e.Key])
		}
	}
}

// TestConcurrentBuildMatchesSerial is the parity proof for the CAS
// publish protocol: at every scheme and worker count, the concurrently
// built table must hold exactly the serially built table's rows,
// bucket by bucket, as a multiset — and a probe over it must reproduce
// the workload's ground truth.
func TestConcurrentBuildMatchesSerial(t *testing.T) {
	spec := workload.Spec{NBuild: 8000, TupleSize: 24, MatchesPerBuild: 2, PctMatched: 90, Seed: 13, Skew: 32}
	data, build, probe, pair := buildEntriesFor(t, spec)

	serial := &RowTable{}
	serial.Reset(len(build), 24, 0)
	serial.BuildSerial(data, build, Group, DefaultG, DefaultD)
	want := bucketRows(serial)

	for _, scheme := range []Scheme{Baseline, Group, Pipelined} {
		for _, workers := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("%v/workers%d", scheme, workers), func(t *testing.T) {
				bs, err := BuildRows(data, build, 24, BuildConfig{Scheme: scheme, Workers: workers})
				if err != nil {
					t.Fatalf("BuildRows: %v", err)
				}
				got := bucketRows(bs.t)
				if len(got) != len(want) {
					t.Fatalf("directory sizes differ: %d vs %d", len(got), len(want))
				}
				for b := range want {
					if len(got[b]) != len(want[b]) {
						t.Fatalf("bucket %d: %d rows, serial has %d", b, len(got[b]), len(want[b]))
					}
					for i := range want[b] {
						if got[b][i] != want[b][i] {
							t.Fatalf("bucket %d row %d differs from serial build", b, i)
						}
					}
				}

				p := bs.NewProber(scheme, 0, 0)
				for lo := 0; lo < len(probe); lo += p.G() {
					hi := min(lo+p.G(), len(probe))
					p.ProbeBatch(probe[lo:hi], func([]byte, uint64) {})
				}
				if p.NOutput() != pair.ExpectedMatches || p.KeySum() != pair.KeySum {
					t.Fatalf("probe over concurrent build = (%d, %d), want (%d, %d)",
						p.NOutput(), p.KeySum(), pair.ExpectedMatches, pair.KeySum)
				}
			})
		}
	}
}

// TestBuildSideSharedProbers runs many concurrent Probers over one
// BuildSide — the service's cached-build path — and checks each stream
// independently reproduces the ground truth.
func TestBuildSideSharedProbers(t *testing.T) {
	spec := workload.Spec{NBuild: 5000, TupleSize: 20, MatchesPerBuild: 1, PctMatched: 100, Seed: 29}
	data, build, probe, pair := buildEntriesFor(t, spec)
	bs, err := BuildRows(data, build, 20, BuildConfig{Scheme: Group, Workers: 4})
	if err != nil {
		t.Fatalf("BuildRows: %v", err)
	}

	const streams = 8
	errs := make(chan error, streams)
	for i := 0; i < streams; i++ {
		scheme := []Scheme{Baseline, Group, Pipelined}[i%3]
		go func(scheme Scheme) {
			p := bs.NewProber(scheme, 0, 0)
			for lo := 0; lo < len(probe); lo += p.G() {
				hi := min(lo+p.G(), len(probe))
				p.ProbeBatch(probe[lo:hi], func([]byte, uint64) {})
			}
			if p.NOutput() != pair.ExpectedMatches || p.KeySum() != pair.KeySum {
				errs <- fmt.Errorf("%v stream: (%d, %d), want (%d, %d)",
					scheme, p.NOutput(), p.KeySum(), pair.ExpectedMatches, pair.KeySum)
				return
			}
			errs <- nil
		}(scheme)
	}
	for i := 0; i < streams; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestRowTableResetShrink pins the v2 accounting contract: a table that
// held a huge pair releases its slab and directory when Reset for a
// small one, but keeps its allocation when bouncing between similar
// sizes.
func TestRowTableResetShrink(t *testing.T) {
	tbl := &RowTable{}
	tbl.Reset(200_000, 32, 0)
	big := tbl.Bytes()

	// A similar-size Reset must not reallocate (capacity is retained).
	tbl.Reset(180_000, 32, 0)
	if got := tbl.Bytes(); got > big {
		t.Fatalf("similar-size Reset grew the table: %d > %d", got, big)
	}

	tbl.Reset(16, 8, 0)
	small := tbl.Bytes()
	needRows := rowSlabPad + 16*(rowHdrSize+8)
	maxRows := max(rowShrinkFactor*needRows, rowSlabFloor)
	maxDir := 8 * max(rowShrinkFactor*16, rowDirFloor)
	if small > maxRows+maxDir {
		t.Fatalf("small Reset kept %d bytes (slab+dir bound %d): shrink did not release", small, maxRows+maxDir)
	}
	if small >= big/4 {
		t.Fatalf("Bytes after shrink = %d, want far below the large table's %d", small, big)
	}

	// The shrunken table still works.
	a := arena.New(1 << 16)
	addr, err := a.TryAlloc(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(a.Bytes(addr, 4), 7)
	es := []Entry{{Code: hash.CodeU32(7), Key: 7, Ref: addr}}
	tbl.BuildSerial(a.Data(), es, Baseline, DefaultG, DefaultD)
	found := 0
	tbl.LookupRows(es[0].Code, func(row []byte) {
		if binary.LittleEndian.Uint32(row) == 7 {
			found++
		}
	})
	if found != 1 {
		t.Fatalf("lookup after shrink found %d rows, want 1", found)
	}
}

// FuzzRowTableProbe drives the row-table build and LookupRows with
// fuzz-derived keys against a map oracle, mirroring FuzzTableInsertProbe
// for the v1 table. Width-4 rows: the key is the whole tuple.
func FuzzRowTableProbe(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{3, 1, 0, 0, 0, 1, 0, 0, 0, 2, 0, 0, 0})
	f.Add([]byte{8, 0xAA, 0xBB, 0xCC, 0xDD, 0xAA, 0xBB, 0xCC, 0xDD})
	f.Fuzz(func(t *testing.T, in []byte) {
		if len(in) < 1 {
			return
		}
		shift := uint(in[0] & 15)
		in = in[1:]
		keys := make([]uint32, 0, len(in)/4)
		for len(in) >= 4 {
			keys = append(keys, binary.LittleEndian.Uint32(in))
			in = in[4:]
		}
		if len(keys) > 4096 {
			keys = keys[:4096]
		}
		nInsert := len(keys) / 2
		if nInsert == 0 {
			return
		}

		a := arena.New(1 << 20)
		es := make([]Entry, nInsert)
		oracle := map[uint32]int{}
		for i := 0; i < nInsert; i++ {
			k := keys[i]
			addr, err := a.TryAlloc(4, 1)
			if err != nil {
				t.Fatal(err)
			}
			binary.LittleEndian.PutUint32(a.Bytes(addr, 4), k)
			es[i] = Entry{Code: hash.CodeU32(k), Key: k, Ref: addr}
			oracle[k]++
		}
		tbl := &RowTable{}
		tbl.Reset(nInsert, 4, shift)
		tbl.BuildSerial(a.Data(), es, Pipelined, DefaultG, DefaultD)
		for _, k := range keys {
			got := 0
			tbl.LookupRows(hash.CodeU32(k), func(row []byte) {
				if binary.LittleEndian.Uint32(row) == k {
					got++
				}
			})
			if got != oracle[k] {
				t.Fatalf("key %#x: %d matches, oracle says %d", k, got, oracle[k])
			}
		}
	})
}

// FuzzConcurrentBuildParity feeds fuzz-derived keys, worker counts, and
// schemes through BuildRows and requires the result to equal the serial
// build bucket-for-bucket as a row multiset.
func FuzzConcurrentBuildParity(f *testing.F) {
	f.Add([]byte{1, 0, 1, 0, 0, 0, 2, 0, 0, 0, 3, 0, 0, 0})
	f.Add([]byte{4, 2, 0xAA, 0xBB, 0xCC, 0xDD, 0xAA, 0xBB, 0xCC, 0xDD})
	f.Fuzz(func(t *testing.T, in []byte) {
		if len(in) < 2 {
			return
		}
		workers := 1 + int(in[0]&7)
		scheme := []Scheme{Baseline, Group, Pipelined}[int(in[1])%3]
		in = in[2:]
		keys := make([]uint32, 0, len(in)/4)
		for len(in) >= 4 {
			keys = append(keys, binary.LittleEndian.Uint32(in))
			in = in[4:]
		}
		if len(keys) > 4096 {
			keys = keys[:4096]
		}
		if len(keys) == 0 {
			return
		}

		a := arena.New(1 << 20)
		es := make([]Entry, len(keys))
		for i, k := range keys {
			addr, err := a.TryAlloc(4, 1)
			if err != nil {
				t.Fatal(err)
			}
			binary.LittleEndian.PutUint32(a.Bytes(addr, 4), k)
			es[i] = Entry{Code: hash.CodeU32(k), Key: k, Ref: addr}
		}
		data := a.Data()

		serial := &RowTable{}
		serial.Reset(len(es), 4, 0)
		serial.BuildSerial(data, es, scheme, DefaultG, DefaultD)
		want := bucketRows(serial)

		bs, err := BuildRows(data, es, 4, BuildConfig{Scheme: scheme, Workers: workers})
		if err != nil {
			t.Fatalf("BuildRows: %v", err)
		}
		got := bucketRows(bs.t)
		if len(got) != len(want) {
			t.Fatalf("directory sizes differ: %d vs %d", len(got), len(want))
		}
		for b := range want {
			if len(got[b]) != len(want[b]) {
				t.Fatalf("bucket %d: %d rows, serial has %d", b, len(got[b]), len(want[b]))
			}
			for i := range want[b] {
				if !bytes.Equal([]byte(got[b][i]), []byte(want[b][i])) {
					t.Fatalf("bucket %d row %d differs from serial build", b, i)
				}
			}
		}
	})
}
