package native

import (
	"sync"
	"sync/atomic"
)

// Morsel-driven join phase: partition pairs are the morsels, and a
// worker pool claims them from a shared atomic queue. Round-robin
// pre-assignment (as in the simulator's core.JoinPartitionsParallel)
// serializes on skew — a worker stuck with the one huge partition
// determines the wall clock while its siblings idle; with a queue, the
// huge pair costs one worker and every other pair drains in parallel
// behind it. The result is deterministic regardless of claim order
// because NOutput and KeySum are commutative sums.

// worker returns the Joiner's w-th pairJoiner, creating it on first use
// and re-arming it (data pointer, tuning, zeroed accumulators) for this
// join. Tables and match buffers carry over, so repeated joins run on
// recycled memory.
func (jn *Joiner) worker(w int, data []byte, cfg Config) *pairJoiner {
	for len(jn.workers) <= w {
		jn.workers = append(jn.workers, newPairJoiner())
	}
	j := jn.workers[w]
	j.data = data
	j.g, j.d = cfg.G, cfg.D
	j.nOutput, j.keySum = 0, 0
	j.sink = nil
	if jn.sinkFor != nil {
		j.sink = jn.sinkFor(w)
	}
	return j
}

// joinPairs joins corresponding partition pairs of jn.bp and jn.pp on
// up to cfg.Workers goroutines.
func (jn *Joiner) joinPairs(data []byte, cfg Config) Result {
	bp, pp := &jn.bp, &jn.pp
	n := bp.fanout()
	workers := cfg.Workers
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}

	if workers == 1 {
		j := jn.worker(0, data, cfg)
		for i := 0; i < n; i++ {
			j.joinPair(bp.part(i), pp.part(i), bp.bits, cfg.Scheme)
		}
		return Result{NOutput: j.nOutput, KeySum: j.keySum, Workers: 1}
	}

	type acc struct {
		nOutput int
		keySum  uint64
		_       [48]byte // pad accumulators to distinct cache lines
	}
	accs := make([]acc, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		j := jn.worker(w, data, cfg)
		wg.Add(1)
		go func(w int, j *pairJoiner) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					break
				}
				j.joinPair(bp.part(i), pp.part(i), bp.bits, cfg.Scheme)
			}
			accs[w].nOutput = j.nOutput
			accs[w].keySum = j.keySum
		}(w, j)
	}
	wg.Wait()

	var r Result
	r.Workers = workers
	for w := range accs {
		r.NOutput += accs[w].nOutput
		r.KeySum += accs[w].keySum
	}
	return r
}
