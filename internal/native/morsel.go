package native

import (
	"hashjoin/internal/arena"
	"hashjoin/internal/fault"
)

// Morsel-driven join phase: partition pairs are the morsels, and a
// worker pool claims them from a shared atomic queue. Round-robin
// pre-assignment (as in the simulator's core.JoinPartitionsParallel)
// serializes on skew — a worker stuck with the one huge partition
// determines the wall clock while its siblings idle; with a queue, the
// huge pair costs one worker and every other pair drains in parallel
// behind it. The result is deterministic regardless of claim order
// because NOutput and KeySum are commutative sums.

// worker returns the Joiner's w-th pairJoiner, creating it on first use
// and re-arming it (data pointer, tuning, zeroed accumulators) for this
// join. Tables and match buffers carry over, so repeated joins run on
// recycled memory.
func (jn *Joiner) worker(w int, data []byte, width int, cfg Config) *pairJoiner {
	for len(jn.workers) <= w {
		jn.workers = append(jn.workers, newPairJoiner())
	}
	j := jn.workers[w]
	j.data = data
	j.width = width
	j.g, j.d = cfg.G, cfg.D
	j.joinType = cfg.JoinType
	j.deferProbe, j.probeBase = false, 0
	j.nOutput, j.keySum = 0, 0
	j.sink = nil
	if jn.sinkFor != nil {
		j.sink = jn.sinkFor(w)
	}
	j.spill = jn.spillSt
	return j
}

// claimCheck is the cooperative gate a worker passes before claiming a
// partition pair: cancellation first, then the worker failpoint (so
// fault tests can kill one claim deterministically).
func claimCheck(cfg Config) error {
	if err := cfg.Ctx.Err(); err != nil {
		return err
	}
	return fault.Hit(fault.SiteMorselWorker)
}

// joinPairs joins corresponding partition pairs of jn.bp and jn.pp
// through a morsel Pool: cfg.Pool when a shared pool is installed (the
// multi-tenant scheduler), else a localPool spanning up to cfg.Workers
// dedicated goroutines. The first error any morsel hits — a
// *BudgetError from an irreducible pair, arena exhaustion recovered
// from a sink, cancellation, or an injected fault — stops further
// morsel issue, and joinPairs returns it after every in-flight morsel
// has finished; a failure never panics across a goroutine boundary and
// never leaks a worker. Cancellation-class errors come back as a
// *CancelError carrying how many pairs completed.
func (jn *Joiner) joinPairs(data []byte, width int, cfg Config) (Result, error) {
	bp, pp := &jn.bp, &jn.pp
	n := bp.fanout()
	workers := cfg.Workers
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}

	// Per-slot progress accounting, padded to distinct cache lines. The
	// pool contract (one Run in flight per slot) makes slot-indexed
	// writes race-free; output accumulators live in the pairJoiners.
	type slotAcc struct {
		depth        int
		pairs        int
		resident     int
		spilled      int
		demoted      int
		bytesDemoted int64
		_            [16]byte
	}
	accs := make([]slotAcc, workers)
	js := make([]*pairJoiner, workers)
	for w := 0; w < workers; w++ {
		js[w] = jn.worker(w, data, width, cfg)
	}
	pool := cfg.Pool
	if pool == nil {
		pool = localPool{}
	}
	err := pool.Do(&MorselJob{
		Tenant: cfg.Tenant,
		Weight: cfg.Weight,
		N:      n,
		Slots:  workers,
		Run: func(slot, i int) (err error) {
			defer arena.RecoverOOM(&err)
			if err = claimCheck(cfg); err != nil {
				return err
			}
			var d int
			if plan := jn.plan; plan != nil {
				// Hybrid: morsel i is the i-th pair of the plan order —
				// planned-resident pairs first — joined under the budget in
				// force at claim time. A pair the static budget would have
				// kept resident but the shrunken one cannot is a demotion:
				// it takes the victim path instead of restarting the query.
				pi := plan.order[i]
				ccfg := cfg
				ccfg.MemBudget = effectiveBudget(cfg)
				foot := plan.foot[pi]
				if foot <= ccfg.MemBudget {
					if foot > 0 {
						accs[slot].resident++
					}
				} else {
					accs[slot].spilled++
					if foot <= cfg.MemBudget {
						accs[slot].demoted++
						accs[slot].bytesDemoted += int64(foot)
					}
				}
				d, err = js[slot].joinPairHybrid(bp.part(pi), pp.part(pi), bp.bits, ccfg)
			} else {
				d, err = js[slot].joinPairBudget(bp.part(i), pp.part(i), bp.bits, cfg, 0)
			}
			if err != nil {
				return err
			}
			accs[slot].pairs++
			if d > accs[slot].depth {
				accs[slot].depth = d
			}
			return nil
		},
	})

	var r Result
	r.Workers = workers
	for w := range accs {
		r.PairsJoined += accs[w].pairs
		if accs[w].depth > r.RecursionDepth {
			r.RecursionDepth = accs[w].depth
		}
		r.Hybrid.ResidentPairs += accs[w].resident
		r.Hybrid.SpilledPairs += accs[w].spilled
		r.Hybrid.DemotedPairs += accs[w].demoted
		r.Hybrid.BytesDemoted += accs[w].bytesDemoted
	}
	for _, j := range js {
		r.NOutput += j.nOutput
		r.KeySum += j.keySum
	}
	if err != nil {
		return Result{Workers: workers, PairsJoined: r.PairsJoined},
			asCancel(err, r.PairsJoined, n, r.NOutput)
	}
	return r, nil
}
