package native

import (
	"sync"
	"sync/atomic"

	"hashjoin/internal/arena"
	"hashjoin/internal/fault"
)

// Morsel-driven join phase: partition pairs are the morsels, and a
// worker pool claims them from a shared atomic queue. Round-robin
// pre-assignment (as in the simulator's core.JoinPartitionsParallel)
// serializes on skew — a worker stuck with the one huge partition
// determines the wall clock while its siblings idle; with a queue, the
// huge pair costs one worker and every other pair drains in parallel
// behind it. The result is deterministic regardless of claim order
// because NOutput and KeySum are commutative sums.

// worker returns the Joiner's w-th pairJoiner, creating it on first use
// and re-arming it (data pointer, tuning, zeroed accumulators) for this
// join. Tables and match buffers carry over, so repeated joins run on
// recycled memory.
func (jn *Joiner) worker(w int, data []byte, cfg Config) *pairJoiner {
	for len(jn.workers) <= w {
		jn.workers = append(jn.workers, newPairJoiner())
	}
	j := jn.workers[w]
	j.data = data
	j.g, j.d = cfg.G, cfg.D
	j.nOutput, j.keySum = 0, 0
	j.sink = nil
	if jn.sinkFor != nil {
		j.sink = jn.sinkFor(w)
	}
	j.spill = jn.spillSt
	return j
}

// claimCheck is the cooperative gate a worker passes before claiming a
// partition pair: cancellation first, then the worker failpoint (so
// fault tests can kill one claim deterministically).
func claimCheck(cfg Config) error {
	if err := cfg.Ctx.Err(); err != nil {
		return err
	}
	return fault.Hit(fault.SiteMorselWorker)
}

// joinPairs joins corresponding partition pairs of jn.bp and jn.pp on
// up to cfg.Workers goroutines. The first error any worker hits — a
// *BudgetError from an irreducible pair, arena exhaustion recovered
// from a sink, cancellation, or an injected fault — makes the remaining
// workers stop claiming pairs, and joinPairs returns it after every
// worker has exited; a failure never panics across a goroutine boundary
// and never leaks a worker. Cancellation-class errors come back as a
// *CancelError carrying how many pairs completed.
func (jn *Joiner) joinPairs(data []byte, cfg Config) (Result, error) {
	bp, pp := &jn.bp, &jn.pp
	n := bp.fanout()
	workers := cfg.Workers
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}

	if workers == 1 {
		j := jn.worker(0, data, cfg)
		maxDepth, pairsDone := 0, 0
		var err error
		func() {
			defer arena.RecoverOOM(&err)
			for i := 0; i < n; i++ {
				if err = claimCheck(cfg); err != nil {
					return
				}
				var d int
				if d, err = j.joinPairBudget(bp.part(i), pp.part(i), bp.bits, cfg, 0); err != nil {
					return
				}
				pairsDone++
				if d > maxDepth {
					maxDepth = d
				}
			}
		}()
		if err != nil {
			return Result{Workers: 1}, asCancel(err, pairsDone, n, j.nOutput)
		}
		return Result{NOutput: j.nOutput, KeySum: j.keySum, Workers: 1, RecursionDepth: maxDepth}, nil
	}

	type acc struct {
		nOutput int
		keySum  uint64
		depth   int
		pairs   int
		err     error
		_       [16]byte // pad accumulators to distinct cache lines
	}
	accs := make([]acc, workers)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		j := jn.worker(w, data, cfg)
		wg.Add(1)
		go func(w int, j *pairJoiner) {
			defer wg.Done()
			var err error
			maxDepth, pairsDone := 0, 0
			defer func() {
				accs[w] = acc{nOutput: j.nOutput, keySum: j.keySum, depth: maxDepth, pairs: pairsDone, err: err}
				if err != nil {
					failed.Store(true)
				}
			}()
			defer arena.RecoverOOM(&err)
			for !failed.Load() {
				if err = claimCheck(cfg); err != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					break
				}
				var d int
				if d, err = j.joinPairBudget(bp.part(i), pp.part(i), bp.bits, cfg, 0); err != nil {
					return
				}
				pairsDone++
				if d > maxDepth {
					maxDepth = d
				}
			}
		}(w, j)
	}
	wg.Wait()

	var r Result
	r.Workers = workers
	var firstErr error
	pairsDone := 0
	for w := range accs {
		if accs[w].err != nil && firstErr == nil {
			firstErr = accs[w].err
		}
		r.NOutput += accs[w].nOutput
		r.KeySum += accs[w].keySum
		pairsDone += accs[w].pairs
		if accs[w].depth > r.RecursionDepth {
			r.RecursionDepth = accs[w].depth
		}
	}
	if firstErr != nil {
		return Result{Workers: workers}, asCancel(firstErr, pairsDone, n, r.NOutput)
	}
	return r, nil
}
