//go:build amd64 && !purego

package native

import "unsafe"

// HavePrefetch reports whether prefetchT0 issues a real prefetch
// instruction on this build.
const HavePrefetch = true

// prefetchT0 issues PREFETCHT0 for the cache line containing p: a
// non-binding hint that retires immediately, exactly the primitive the
// paper's schemes assume (gcc's __builtin_prefetch). Go has no prefetch
// intrinsic, so this is a one-instruction assembly stub; the call
// overhead (~1-2 ns, the stub cannot be inlined) is amortized by group/
// pipelined batching and is far below the DRAM miss it hides.
//
//go:noescape
func prefetchT0(p unsafe.Pointer)
