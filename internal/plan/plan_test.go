package plan

import (
	"strings"
	"testing"
)

func TestParseJoinTypeRoundTrip(t *testing.T) {
	for _, jt := range JoinTypes() {
		got, err := ParseJoinType(jt.String())
		if err != nil || got != jt {
			t.Fatalf("ParseJoinType(%q) = %v, %v", jt.String(), got, err)
		}
	}
	for in, want := range map[string]JoinType{
		"left-semi": LeftSemi, "left-anti": LeftAnti, "left": LeftOuter,
		"right": RightOuter, "": Inner, "INNER": Inner,
	} {
		got, err := ParseJoinType(in)
		if err != nil || got != want {
			t.Fatalf("ParseJoinType(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseJoinType("full-outer"); err == nil {
		t.Fatal("ParseJoinType accepted full-outer")
	}
}

func TestParseStrategyRoundTrip(t *testing.T) {
	for _, s := range []Strategy{Auto, NestedLoop, StreamHash, PartitionedHash} {
		got, err := ParseStrategy(s.String())
		if err != nil || got != s {
			t.Fatalf("ParseStrategy(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseStrategy("index"); err == nil {
		t.Fatal("ParseStrategy accepted index")
	}
}

func TestProbeOnly(t *testing.T) {
	for jt, want := range map[JoinType]bool{
		Inner: false, LeftOuter: false, RightOuter: false,
		LeftSemi: true, LeftAnti: true,
	} {
		if jt.ProbeOnly() != want {
			t.Fatalf("%v.ProbeOnly() = %v, want %v", jt, jt.ProbeOnly(), want)
		}
	}
}

// TestChooseNestedLoopBelowCrossover pins the planner to the measured
// crossover: a build side at the crossover row count goes nested-loop,
// one row past it goes hash.
func TestChooseNestedLoopBelowCrossover(t *testing.T) {
	st := Stats{BuildRows: DefaultNestedLoopCrossover, ProbeRows: 1 << 16,
		BuildWidth: 32, ProbeWidth: 32, BuildFootprint: 1 << 10}
	d := Choose(st, Inner, 0)
	if d.Strategy != NestedLoop || d.Fanout != 1 {
		t.Fatalf("at crossover: %+v", d)
	}
	st.BuildRows = DefaultNestedLoopCrossover + 1
	d = Choose(st, Inner, 0)
	if d.Strategy != StreamHash {
		t.Fatalf("past crossover: %+v", d)
	}
}

// TestChooseSemiSelectivityExtendsNestedLoop proves selectivity feeds
// the decision: a semi join that short-circuits on a guaranteed match
// scans half the build side on average, so a build side slightly past
// the inner-join crossover still goes nested-loop.
func TestChooseSemiSelectivityExtendsNestedLoop(t *testing.T) {
	st := Stats{BuildRows: 2 * DefaultNestedLoopCrossover, ProbeRows: 1 << 16,
		BuildWidth: 32, ProbeWidth: 32, BuildFootprint: 1 << 10, MatchRate: 1}
	if d := Choose(st, Inner, 0); d.Strategy != StreamHash {
		t.Fatalf("inner at 2x crossover: %+v", d)
	}
	if d := Choose(st, LeftSemi, 0); d.Strategy != NestedLoop {
		t.Fatalf("semi at 2x crossover with match rate 1: %+v", d)
	}
	// With no matches the semi scan never short-circuits.
	st.MatchRate = 0.0001
	if d := Choose(st, LeftSemi, 0); d.Strategy != StreamHash {
		t.Fatalf("semi at 2x crossover with match rate ~0: %+v", d)
	}
}

func TestChoosePartitionedOverBudget(t *testing.T) {
	st := Stats{BuildRows: 1 << 16, ProbeRows: 1 << 17,
		BuildWidth: 32, ProbeWidth: 32, BuildFootprint: 1 << 20}
	d := Choose(st, Inner, 1<<16)
	if d.Strategy != PartitionedHash {
		t.Fatalf("over budget: %+v", d)
	}
	if d.Fanout < 2 || d.Fanout&(d.Fanout-1) != 0 || d.Fanout > maxPlannedFanout {
		t.Fatalf("fanout %d not a bounded power of two", d.Fanout)
	}
	// Each partition must fit the budget (up to the cap).
	if d.Fanout < maxPlannedFanout && (st.BuildFootprint+d.Fanout-1)/d.Fanout > 1<<16 {
		t.Fatalf("fanout %d leaves partitions over budget", d.Fanout)
	}
}

func TestChoosePartitionedPastCacheCrossover(t *testing.T) {
	st := Stats{BuildRows: 1 << 22, ProbeRows: 1 << 22, BuildWidth: 32,
		ProbeWidth: 32, BuildFootprint: 2 * DefaultPartitionCrossoverBytes}
	d := Choose(st, Inner, 0)
	if d.Strategy != PartitionedHash || d.Fanout < 2 {
		t.Fatalf("past partition crossover: %+v", d)
	}
}

func TestChooseStreamInBetween(t *testing.T) {
	const budget = 2 * DefaultPartitionCrossoverBytes
	st := Stats{BuildRows: 10000, ProbeRows: 100000, BuildWidth: 32,
		ProbeWidth: 32, BuildFootprint: DefaultPartitionCrossoverBytes / 2}
	d := Choose(st, LeftOuter, budget)
	if d.Strategy != StreamHash || d.Fanout != 1 {
		t.Fatalf("mid-size build: %+v", d)
	}
	if d.JoinType != LeftOuter || d.Budget != budget {
		t.Fatalf("decision does not echo inputs: %+v", d)
	}
}

func TestExplainCarriesInputs(t *testing.T) {
	d := Choose(Stats{BuildRows: 4, ProbeRows: 100, BuildFootprint: 256}, LeftSemi, 4096)
	s := d.Explain()
	for _, want := range []string{"strategy=nested-loop", "join_type=semi",
		"build_rows=4", "probe_rows=100", "budget=4096", "reason="} {
		if !strings.Contains(s, want) {
			t.Fatalf("Explain() = %q missing %q", s, want)
		}
	}
}
