// Package plan is the cost-based join strategy planner: given workload
// statistics, a join type, and the admitted memory window, Choose picks
// the cheapest execution strategy — a nested-loop scan for tiny build
// sides, a single streaming hash probe for cache-resident ones, or the
// radix-partitioned morsel join when the build side overflows the cache
// or the memory budget.
//
// The crossover points between the strategies are not guessed: they are
// measured on the host by the calibration benchmark
// (BenchmarkJoinCrossover, which emits BENCH_join.json) and pinned here
// as defaults. cmd/benchcheck asserts the committed document and these
// constants agree, so a re-calibration that moves a crossover must move
// the pinned default with it.
//
// The package is a dependency leaf: it imports only the standard
// library, so every layer — native kernels, the operator engine, the
// CLI front ends, and the workload generator — can share its JoinType
// and Strategy vocabularies without import cycles.
package plan

import (
	"fmt"
	"strings"
)

// JoinType selects the join's matching semantics. The probe relation is
// always the left input and the build relation the right one, so a
// LeftOuter join null-pads the build columns of unmatched probe rows
// and a RightOuter join emits unmatched build rows.
type JoinType uint8

const (
	// Inner emits one build||probe row per key match.
	Inner JoinType = iota
	// LeftOuter additionally emits every unmatched probe row once, its
	// build columns null-padded (all-zero bytes, null_map semantics).
	LeftOuter
	// RightOuter additionally emits every unmatched build row once, its
	// probe columns null-padded.
	RightOuter
	// LeftSemi emits each probe row with at least one match, once,
	// without build columns; the probe short-circuits on first match.
	LeftSemi
	// LeftAnti emits each probe row with no match, once, without build
	// columns.
	LeftAnti
)

var joinTypeNames = [...]string{"inner", "left-outer", "right-outer", "semi", "anti"}

func (t JoinType) String() string {
	if int(t) < len(joinTypeNames) {
		return joinTypeNames[t]
	}
	return fmt.Sprintf("JoinType(%d)", uint8(t))
}

// ProbeOnly reports whether output rows carry only the probe tuple
// (semi and anti joins emit no build columns).
func (t JoinType) ProbeOnly() bool { return t == LeftSemi || t == LeftAnti }

// JoinTypes lists every join type, in parse-name order.
func JoinTypes() []JoinType {
	return []JoinType{Inner, LeftOuter, RightOuter, LeftSemi, LeftAnti}
}

// JoinTypeNames lists the accepted ParseJoinType spellings, for usage
// messages.
func JoinTypeNames() string { return strings.Join(joinTypeNames[:], ", ") }

// ParseJoinType parses a join type name; "left-semi" and "left-anti"
// are accepted aliases for "semi" and "anti".
func ParseJoinType(s string) (JoinType, error) {
	switch strings.ToLower(s) {
	case "inner", "":
		return Inner, nil
	case "left-outer", "left":
		return LeftOuter, nil
	case "right-outer", "right":
		return RightOuter, nil
	case "semi", "left-semi":
		return LeftSemi, nil
	case "anti", "left-anti":
		return LeftAnti, nil
	}
	return Inner, fmt.Errorf("unknown join type %q (accepted: %s)", s, JoinTypeNames())
}

// Strategy is the execution strategy Choose selects over. The zero
// value Auto means "let the planner decide", so existing call sites
// that never set a strategy keep their legacy behavior.
type Strategy uint8

const (
	// Auto defers the decision to Choose.
	Auto Strategy = iota
	// NestedLoop materializes the build side as a flat array and scans
	// it per probe row — no hash table, no build phase beyond a copy.
	// Cheapest when the build side is a handful of rows.
	NestedLoop
	// StreamHash builds one hash table and streams probe batches
	// through it (the paper's group/pipelined prefetched probe).
	StreamHash
	// PartitionedHash radix-partitions both sides and joins the pairs
	// on the morsel worker pool; required when the build side exceeds
	// the admitted memory window and fastest once it exceeds the cache.
	PartitionedHash
)

var strategyNames = [...]string{"auto", "nested-loop", "stream", "partitioned"}

func (s Strategy) String() string {
	if int(s) < len(strategyNames) {
		return strategyNames[s]
	}
	return fmt.Sprintf("Strategy(%d)", uint8(s))
}

// StrategyNames lists the accepted ParseStrategy spellings.
func StrategyNames() string { return strings.Join(strategyNames[:], ", ") }

// ParseStrategy parses a strategy name.
func ParseStrategy(s string) (Strategy, error) {
	switch strings.ToLower(s) {
	case "auto", "":
		return Auto, nil
	case "nested-loop", "nl":
		return NestedLoop, nil
	case "stream", "streaming", "hash":
		return StreamHash, nil
	case "partitioned", "radix", "morsel":
		return PartitionedHash, nil
	}
	return Auto, fmt.Errorf("unknown strategy %q (accepted: %s)", s, StrategyNames())
}

// Stats are the planner's inputs: the cardinalities and widths of both
// sides, the build side's resident hash-join footprint in bytes
// (computed by the caller, e.g. native.BuildFootprint), and the
// estimated match rate — the fraction of probe rows with at least one
// build match. MatchRate <= 0 means unknown and is treated as 1.
type Stats struct {
	BuildRows  int
	ProbeRows  int
	BuildWidth int
	ProbeWidth int
	// BuildFootprint is the bytes a hash join needs resident for the
	// build side: rows, row headers, table directory.
	BuildFootprint int
	// MatchRate estimates join selectivity on the probe side.
	MatchRate float64
}

// Measured crossover defaults, pinned from the calibration benchmark
// (BenchmarkJoinCrossover → BENCH_join.json) on this repository's
// reference hardware. cmd/benchcheck fails CI when the committed
// BENCH_join.json and these constants disagree.
const (
	// DefaultNestedLoopCrossover is the largest build-side row count at
	// which the nested-loop scan still beats building and probing a
	// hash table (measured over the calibration sweep's probe sizes).
	DefaultNestedLoopCrossover = 16

	// DefaultPartitionCrossoverBytes is the build-side footprint above
	// which radix-partitioning the pair beats one streaming probe: the
	// measured point where the build side falls out of the cache and
	// partitioned probes win despite the extra scatter pass. 448 KiB is
	// the footprint of the smallest swept pair the partitioned join won
	// on the reference host (it won every larger one too).
	DefaultPartitionCrossoverBytes = 448 << 10
)

// maxPlannedFanout caps the fan-out Choose derives, matching the
// native partitioner's practical radix width.
const maxPlannedFanout = 256

// Decision reports a strategy choice and the inputs that produced it,
// the payload of the EXPLAIN surfaces (hjquery -explain, hjserve
// explain=1, PipelineResult.Plan).
type Decision struct {
	Strategy Strategy
	JoinType JoinType
	// Fanout is the partition fan-out to run with: 1 for NestedLoop and
	// StreamHash, a power of two >= 2 for PartitionedHash.
	Fanout int
	// Budget is the admitted memory window the decision was made under
	// (0 = unbudgeted).
	Budget int
	// Stats echoes the planner inputs.
	Stats Stats
	// Reason is a one-line human-readable justification.
	Reason string
}

// Explain formats the decision and its inputs as one line, the common
// form all EXPLAIN surfaces print.
func (d Decision) Explain() string {
	return fmt.Sprintf("strategy=%v join_type=%v fanout=%d build_rows=%d probe_rows=%d build_bytes=%d match_rate=%.2f budget=%d reason=%q",
		d.Strategy, d.JoinType, d.Fanout, d.Stats.BuildRows, d.Stats.ProbeRows,
		d.Stats.BuildFootprint, d.effectiveMatchRate(), d.Budget, d.Reason)
}

func (d Decision) effectiveMatchRate() float64 {
	if d.Stats.MatchRate <= 0 || d.Stats.MatchRate > 1 {
		return 1
	}
	return d.Stats.MatchRate
}

// Choose picks the execution strategy for one join: nested loop when
// the expected per-probe scan is under the measured crossover,
// partitioned hash when the build side overflows the budget or the
// partition crossover, and the streaming hash probe otherwise.
func Choose(st Stats, jt JoinType, budget int) Decision {
	d := Decision{JoinType: jt, Budget: budget, Stats: st, Fanout: 1}
	mr := st.MatchRate
	if mr <= 0 || mr > 1 {
		mr = 1
	}

	// Expected rows a nested-loop probe scans per probe row: a hit walks
	// half the build side on average before semi/anti short-circuit;
	// misses and non-short-circuiting types scan it all.
	scan := float64(st.BuildRows)
	if jt.ProbeOnly() {
		scan = mr*scan/2 + (1-mr)*scan
	}
	if scan <= DefaultNestedLoopCrossover {
		d.Strategy = NestedLoop
		d.Reason = fmt.Sprintf("expected nested-loop scan %.1f rows <= crossover %d",
			scan, DefaultNestedLoopCrossover)
		return d
	}

	if budget > 0 && st.BuildFootprint > budget {
		d.Strategy = PartitionedHash
		d.Fanout = fanoutFor(st.BuildFootprint, budget)
		d.Reason = fmt.Sprintf("build footprint %d B exceeds budget %d B", st.BuildFootprint, budget)
		return d
	}
	if st.BuildFootprint > DefaultPartitionCrossoverBytes {
		d.Strategy = PartitionedHash
		d.Fanout = fanoutFor(st.BuildFootprint, DefaultPartitionCrossoverBytes)
		d.Reason = fmt.Sprintf("build footprint %d B exceeds partition crossover %d B",
			st.BuildFootprint, DefaultPartitionCrossoverBytes)
		return d
	}

	d.Strategy = StreamHash
	d.Reason = fmt.Sprintf("build fits resident (%d B) and scan %.1f rows > nested-loop crossover %d",
		st.BuildFootprint, scan, DefaultNestedLoopCrossover)
	return d
}

// fanoutFor returns the smallest power-of-two fan-out (>= 2, capped)
// that brings an average partition of a need-byte build side under
// per bytes, in divide form to avoid overflow.
func fanoutFor(need, per int) int {
	f := 2
	for f < maxPlannedFanout {
		q := need / f
		if need%f != 0 {
			q++
		}
		if q <= per {
			break
		}
		f <<= 1
	}
	return f
}
