package hash

import "hashjoin/internal/arena"

// Chained bucket hashing — the classic layout the paper's Figure 2
// table improves upon (section 3, footnote 3): each bucket is a linked
// list of hash cells, so visiting a bucket with n cells takes n
// dependent pointer dereferences instead of one header access plus one
// contiguous array scan. Implemented as a full comparator for the
// chained-vs-array ablation (DESIGN.md decision 2).
//
// Header, 8 bytes: u64 address of the first node (0 = empty bucket).
// Node, 24 bytes: +0 u32 code, +8 u64 tuple address, +16 u64 next.
const (
	ChainHeaderSize = 8
	ChainNodeSize   = 24

	NodeOffCode  = 0
	NodeOffTuple = 8
	NodeOffNext  = 16
)

// ChainedTable locates a chained-bucket hash table in the arena.
type ChainedTable struct {
	Buckets  arena.Addr
	NBuckets int
}

// NewChainedTable allocates a zeroed chained table.
func NewChainedTable(a *arena.Arena, nBuckets int) ChainedTable {
	addr := a.AllocZeroed(uint64(nBuckets*ChainHeaderSize), 64)
	return ChainedTable{Buckets: addr, NBuckets: nBuckets}
}

// HeaderAddr returns the address of bucket i's head pointer.
func (t ChainedTable) HeaderAddr(i int) arena.Addr {
	return t.Buckets + arena.Addr(i*ChainHeaderSize)
}

// Insert prepends (code, tuple) to bucket b. Untimed (setup and
// validation); the measured build lives in package core.
func (t ChainedTable) Insert(a *arena.Arena, b int, code uint32, tuple arena.Addr) {
	h := t.HeaderAddr(b)
	node := a.Alloc(ChainNodeSize, 8)
	a.PutU32(node+NodeOffCode, code)
	a.PutU64(node+NodeOffTuple, tuple)
	a.PutU64(node+NodeOffNext, a.U64(h))
	a.PutU64(h, node)
}

// Lookup calls fn for every node in bucket b whose code matches.
// Untimed.
func (t ChainedTable) Lookup(a *arena.Arena, b int, code uint32, fn func(tuple arena.Addr)) {
	for node := a.U64(t.HeaderAddr(b)); node != 0; node = a.U64(node + NodeOffNext) {
		if a.U32(node+NodeOffCode) == code {
			fn(a.U64(node + NodeOffTuple))
		}
	}
}

// Count returns bucket b's chain length. Untimed.
func (t ChainedTable) Count(a *arena.Arena, b int) int {
	n := 0
	for node := a.U64(t.HeaderAddr(b)); node != 0; node = a.U64(node + NodeOffNext) {
		n++
	}
	return n
}
