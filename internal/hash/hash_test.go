package hash

import (
	"encoding/binary"
	"testing"
	"testing/quick"

	"hashjoin/internal/arena"
)

func TestCodeMatchesCodeU32(t *testing.T) {
	f := func(k uint32) bool {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], k)
		return Code(b[:]) == CodeU32(k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCodeU32Deterministic(t *testing.T) {
	if CodeU32(12345) != CodeU32(12345) {
		t.Fatal("hash not deterministic")
	}
}

func TestCodeDistribution(t *testing.T) {
	// Sequential keys should spread across buckets reasonably evenly.
	const n = 1 << 14
	const buckets = 64
	var counts [buckets]int
	for i := uint32(0); i < n; i++ {
		counts[BucketOf(CodeU32(i), buckets)]++
	}
	mean := n / buckets
	for b, c := range counts {
		if c < mean/2 || c > mean*2 {
			t.Fatalf("bucket %d has %d keys, mean %d: poor distribution", b, c, mean)
		}
	}
}

func TestCodeVariableLengthKeys(t *testing.T) {
	a := Code([]byte("customer_0001"))
	b := Code([]byte("customer_0002"))
	if a == b {
		t.Fatal("distinct keys collided (suspicious for this pair)")
	}
	if Code(nil) != Code([]byte{}) {
		t.Fatal("nil and empty key should hash alike")
	}
}

func TestRelativePrimeBelow(t *testing.T) {
	cases := []struct{ n, m, want int }{
		{10, 5, 9},
		{10, 3, 10},
		{100, 10, 99},
		{1, 7, 1},
		{0, 7, 1},
		{12, 6, 11},
	}
	for _, c := range cases {
		if got := RelativePrimeBelow(c.n, c.m); got != c.want {
			t.Errorf("RelativePrimeBelow(%d,%d) = %d, want %d", c.n, c.m, got, c.want)
		}
	}
}

func TestSizeForRelativelyPrime(t *testing.T) {
	f := func(nt uint16, np uint8) bool {
		n := int(nt) + 1
		p := int(np)%97 + 2
		size := SizeFor(n, p)
		return size >= 1 && gcd(size, p) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableInsertLookup(t *testing.T) {
	a := arena.New(1 << 20)
	tbl := NewTable(a, 97)
	type ent struct {
		code  uint32
		tuple arena.Addr
	}
	var ents []ent
	for i := 0; i < 500; i++ {
		code := CodeU32(uint32(i))
		tuple := arena.Addr(0x100000 + i*100)
		tbl.Insert(a, BucketOf(code, 97), code, tuple)
		ents = append(ents, ent{code, tuple})
	}
	if got := tbl.TotalCells(a); got != 500 {
		t.Fatalf("TotalCells = %d, want 500", got)
	}
	for _, e := range ents {
		found := false
		tbl.Lookup(a, BucketOf(e.code, 97), e.code, func(tp arena.Addr) {
			if tp == e.tuple {
				found = true
			}
		})
		if !found {
			t.Fatalf("tuple for code %#x not found", e.code)
		}
	}
}

func TestTableLookupFiltersByCode(t *testing.T) {
	a := arena.New(1 << 16)
	tbl := NewTable(a, 1) // everything in one bucket
	tbl.Insert(a, 0, 111, 0x10000)
	tbl.Insert(a, 0, 222, 0x20000)
	tbl.Insert(a, 0, 111, 0x30000)
	var got []arena.Addr
	tbl.Lookup(a, 0, 111, func(tp arena.Addr) { got = append(got, tp) })
	if len(got) != 2 {
		t.Fatalf("Lookup found %d cells, want 2", len(got))
	}
}

func TestTableOverflowGrowth(t *testing.T) {
	a := arena.New(1 << 20)
	tbl := NewTable(a, 1)
	const n = 100 // forces several array doublings
	for i := 0; i < n; i++ {
		tbl.Insert(a, 0, uint32(i), arena.Addr(0x10000+i*16))
	}
	if tbl.Count(a, 0) != n {
		t.Fatalf("Count = %d, want %d", tbl.Count(a, 0), n)
	}
	for i := 0; i < n; i++ {
		found := false
		tbl.Lookup(a, 0, uint32(i), func(tp arena.Addr) {
			found = found || tp == arena.Addr(0x10000+i*16)
		})
		if !found {
			t.Fatalf("cell %d lost across growth", i)
		}
	}
}

func TestEmptyBucketLookup(t *testing.T) {
	a := arena.New(1 << 12)
	tbl := NewTable(a, 4)
	tbl.Lookup(a, 2, 42, func(arena.Addr) { t.Fatal("callback on empty bucket") })
}

func TestHeaderAddrStride(t *testing.T) {
	a := arena.New(1 << 12)
	tbl := NewTable(a, 8)
	if tbl.HeaderAddr(3)-tbl.HeaderAddr(2) != HeaderSize {
		t.Fatal("header stride mismatch")
	}
	if tbl.Buckets%64 != 0 {
		t.Fatal("table not cache-line aligned")
	}
}

func TestQuickTableNoLostInserts(t *testing.T) {
	f := func(codes []uint32) bool {
		if len(codes) > 2000 {
			codes = codes[:2000]
		}
		a := arena.New(1 << 22)
		nb := SizeFor(len(codes)+1, 31)
		tbl := NewTable(a, nb)
		for i, c := range codes {
			tbl.Insert(a, BucketOf(c, nb), c, arena.Addr(0x100000+i*8))
		}
		return tbl.TotalCells(a) == len(codes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
