// Package hash provides the join's hashing machinery: the XOR-and-shift
// hash function that converts join keys of any length into 4-byte hash
// codes (paper section 7.1), partition/bucket number derivation, and the
// in-memory hash table of the paper's Figure 2 — an array of bucket
// headers, each embedding one hash cell inline and pointing at a
// dynamically grown hash-cell array.
package hash

// Code computes a 4-byte hash code from a join key of any length using
// XOR and shifts, as in the paper. The same codes are used by both the
// partition phase (modulo partition count) and the join phase (modulo
// hash table size); section 7.1 stores them in intermediate partitions'
// slot areas so they are computed only once.
func Code(key []byte) uint32 {
	var h uint32 = 2166136261
	for _, b := range key {
		h = (h << 5) ^ (h >> 27) ^ uint32(b)
	}
	// Final avalanche: cheap shifts/XORs only, per the shift-based hash
	// functions of Boncz et al. cited by the paper.
	h ^= h >> 15
	h ^= h << 11
	h ^= h >> 7
	return h
}

// CodeU32 is Code specialized for the 4-byte little-endian integer keys
// used in the paper's experiments; it returns exactly Code(key[0:4]).
func CodeU32(k uint32) uint32 {
	h := uint32(2166136261)
	h = (h << 5) ^ (h >> 27) ^ (k & 0xFF)
	h = (h << 5) ^ (h >> 27) ^ ((k >> 8) & 0xFF)
	h = (h << 5) ^ (h >> 27) ^ ((k >> 16) & 0xFF)
	h = (h << 5) ^ (h >> 27) ^ (k >> 24)
	h ^= h >> 15
	h ^= h << 11
	h ^= h >> 7
	return h
}

// CodeCost is the simulated compute cost, in cycles, of hashing a 4-byte
// key (a handful of shift/xor ALU operations plus loop overhead).
const CodeCost = 12

// PartitionOf maps a hash code to one of n partitions.
func PartitionOf(code uint32, n int) int { return int(code % uint32(n)) }

// BucketOf maps a hash code to one of n hash buckets. Callers arrange
// for the table size to be relatively prime to the partition count so
// the two modulo operations stay independent (paper section 7.1).
func BucketOf(code uint32, n int) int { return int(code % uint32(n)) }

// RelativePrimeBelow returns the largest value <= n that is relatively
// prime to m (and at least 1). The join phase sizes hash tables with it
// so table size and partition count share no factors.
func RelativePrimeBelow(n, m int) int {
	if n < 1 {
		return 1
	}
	for v := n; v > 1; v-- {
		if gcd(v, m) == 1 {
			return v
		}
	}
	return 1
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	if a < 0 {
		return -a
	}
	return a
}
