package hash

import (
	"hashjoin/internal/arena"
)

// Hash table layout (paper Figure 2).
//
// The table is an array of fixed-size bucket headers. A header embeds
// the bucket's first hash cell inline — improving on chained bucket
// hashing by avoiding a pointer dereference for singleton buckets (the
// common case when the table is sized near the tuple count) — and points
// at a dynamically grown array holding cells 2..n. A hash cell pairs the
// 4-byte hash code (a cheap filter before the real key comparison) with
// the build tuple's address.
//
// Header, 32 bytes (half a 64-byte cache line):
//
//	+0  u32 count      total cells in the bucket
//	+4  u32 code0      inline cell: hash code
//	+8  u64 tuple0     inline cell: build tuple address
//	+16 u64 cells      address of the overflow cell array (0 = none)
//	+24 u32 cap        capacity of the overflow array, in cells
//	+28 u32 busy       0 = idle; used by prefetching build variants:
//	                   group prefetching sets it to 1 while an insert is
//	                   interleaved; software pipelining stores the state
//	                   index + 1 of the tuple updating the bucket, the
//	                   head of the bucket's waiting queue (section 5.3)
//
// Overflow cell, 16 bytes: +0 u32 code, +8 u64 tuple address.
const (
	HeaderSize = 32
	CellSize   = 16

	HOffCount  = 0
	HOffCode0  = 4
	HOffTuple0 = 8
	HOffCells  = 16
	HOffCap    = 24
	HOffBusy   = 28

	CellOffCode  = 0
	CellOffTuple = 8
)

// InitialCellCap is the capacity of a freshly allocated overflow array.
const InitialCellCap = 4

// Table locates a hash table in the arena.
type Table struct {
	Buckets  arena.Addr // address of header 0
	NBuckets int
}

// HeaderAddr returns the address of bucket i's header.
func (t Table) HeaderAddr(i int) arena.Addr {
	return t.Buckets + arena.Addr(i*HeaderSize)
}

// CellAddr returns the address of overflow cell j in an array at cells.
func CellAddr(cells arena.Addr, j int) arena.Addr {
	return cells + arena.Addr(j*CellSize)
}

// NewTable allocates a zeroed table of nBuckets headers, aligned so a
// header never straddles a cache line.
func NewTable(a *arena.Arena, nBuckets int) Table {
	addr := a.AllocZeroed(uint64(nBuckets*HeaderSize), 64)
	return Table{Buckets: addr, NBuckets: nBuckets}
}

// TableBytes returns the memory footprint of a table with nBuckets
// buckets, excluding overflow arrays.
func TableBytes(nBuckets int) int { return nBuckets * HeaderSize }

// SizeFor picks a table size for nTuples build tuples that is relatively
// prime to nPartitions (paper section 7.1): roughly one bucket per tuple.
func SizeFor(nTuples, nPartitions int) int {
	if nTuples < 1 {
		nTuples = 1
	}
	return RelativePrimeBelow(nTuples|1, nPartitions)
}

// --- Untimed operations (setup and validation only) ---

// Insert adds (code, tuple) to bucket b of t, growing the overflow array
// as needed. Untimed: measured builds live in package core.
func (t Table) Insert(a *arena.Arena, b int, code uint32, tuple arena.Addr) {
	h := t.HeaderAddr(b)
	count := a.U32(h + HOffCount)
	if count == 0 {
		a.PutU32(h+HOffCode0, code)
		a.PutU64(h+HOffTuple0, tuple)
		a.PutU32(h+HOffCount, 1)
		return
	}
	cells := a.U64(h + HOffCells)
	capacity := a.U32(h + HOffCap)
	over := count - 1 // cells already in the overflow array
	if cells == 0 || over == uint32(capacity) {
		newCap := uint32(InitialCellCap)
		if capacity > 0 {
			newCap = capacity * 2
		}
		newCells := a.Alloc(uint64(newCap)*CellSize, 64)
		if cells != 0 {
			copy(a.Bytes(newCells, uint64(over)*CellSize), a.Bytes(cells, uint64(over)*CellSize))
		}
		cells = newCells
		a.PutU64(h+HOffCells, cells)
		a.PutU32(h+HOffCap, newCap)
	}
	c := CellAddr(cells, int(over))
	a.PutU32(c+CellOffCode, code)
	a.PutU64(c+CellOffTuple, tuple)
	a.PutU32(h+HOffCount, count+1)
}

// Lookup calls fn for every cell in bucket b whose hash code equals
// code. Untimed; for validation.
func (t Table) Lookup(a *arena.Arena, b int, code uint32, fn func(tuple arena.Addr)) {
	h := t.HeaderAddr(b)
	count := a.U32(h + HOffCount)
	if count == 0 {
		return
	}
	if a.U32(h+HOffCode0) == code {
		fn(a.U64(h + HOffTuple0))
	}
	if count == 1 {
		return
	}
	cells := a.U64(h + HOffCells)
	for j := 0; j < int(count-1); j++ {
		c := CellAddr(cells, j)
		if a.U32(c+CellOffCode) == code {
			fn(a.U64(c + CellOffTuple))
		}
	}
}

// Count returns the number of cells in bucket b. Untimed.
func (t Table) Count(a *arena.Arena, b int) int {
	return int(a.U32(t.HeaderAddr(b) + HOffCount))
}

// TotalCells sums all bucket counts. Untimed; for invariant checks.
func (t Table) TotalCells(a *arena.Arena) int {
	total := 0
	for i := 0; i < t.NBuckets; i++ {
		total += t.Count(a, i)
	}
	return total
}
