package fault

import (
	"os"
	"runtime"
	"time"
)

// TB is the subset of *testing.T the leak checkers need. Taking an
// interface keeps the production import graph free of package testing.
type TB interface {
	Helper()
	Fatalf(format string, args ...any)
}

// Goroutines returns the current goroutine count, for use as a baseline
// before the code under test runs.
func Goroutines() int { return runtime.NumGoroutine() }

// CheckGoroutines fails the test if the goroutine count has not
// returned to the baseline within a grace period. Background workers
// (write-behind, read-ahead, morsel pool) may still be draining when
// the operation under test returns, so the check polls briefly before
// declaring a leak and dumping all stacks.
func CheckGoroutines(t TB, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var n int
	for {
		n = runtime.NumGoroutine()
		if n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	m := runtime.Stack(buf, true)
	t.Fatalf("goroutine leak: %d at baseline, %d after teardown\n%s", baseline, n, buf[:m])
}

// CheckNoFiles fails the test if the directory contains any entries —
// used to prove a spill area left no orphan partition files or per-join
// temp dirs behind. A missing directory counts as clean (the whole area
// was removed).
func CheckNoFiles(t TB, dir string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return
		}
		t.Fatalf("leak check: reading %s: %v", dir, err)
	}
	if len(ents) == 0 {
		return
	}
	names := make([]string, len(ents))
	for i, e := range ents {
		names[i] = e.Name()
	}
	t.Fatalf("leaked temp files in %s: %v", dir, names)
}
