package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"
)

// Chaos schedules: seeded, multi-site fault scripts. Where Enable arms
// one failpoint at a time, a Schedule arms a whole storm — concurrent
// probabilistic faults across arena, spill, worker, and service sites —
// from one compact, reproducible spec string. The soak harness
// (TestChaosSoak) and hjserve's HJ_CHAOS hook both speak this format,
// so a failure seen in CI replays locally from the one line it prints.
//
// Spec grammar (whitespace-tolerant):
//
//	seed=7; site=spill.write,kind=error,errno=EIO,prob=0.3,count=2; site=native.worker,kind=panic,prob=0.05
//
// Semicolons separate the seed clause and the steps; each step is
// comma-separated key=value pairs. Per-step firing probability rolls use
// a per-step RNG seeded from the schedule seed and the step index, so
// two runs of the same spec fire identically.

// Step is one failpoint arming of a chaos schedule.
type Step struct {
	Site  string
	Kind  Kind
	Prob  float64       // <=0 or >=1: fire on every hit
	Count int64         // fire at most Count times; <=0: unlimited
	Delay time.Duration // KindDelay only
	Errno string        // KindError: symbolic errno name; "" = generic *InjectedError
}

// Schedule is a seeded set of concurrently armed fault steps.
type Schedule struct {
	Seed  int64
	Steps []Step
}

// errnoByName maps the symbolic errno names a schedule may inject. The
// dir-class names let chaos runs drive the spill tier's failover path
// with the exact errors real media produces.
var errnoByName = map[string]syscall.Errno{
	"ENOSPC": syscall.ENOSPC,
	"EDQUOT": syscall.EDQUOT,
	"EIO":    syscall.EIO,
	"EROFS":  syscall.EROFS,
	"ENODEV": syscall.ENODEV,
	"ENXIO":  syscall.ENXIO,
	"ESTALE": syscall.ESTALE,
	"ENOENT": syscall.ENOENT,
	"EACCES": syscall.EACCES,
	"EPERM":  syscall.EPERM,
	"EINTR":  syscall.EINTR,
	"EAGAIN": syscall.EAGAIN,
}

// ErrnoNames lists the symbolic errno names a schedule accepts, sorted.
func ErrnoNames() []string {
	names := make([]string, 0, len(errnoByName))
	for n := range errnoByName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

var kindNames = map[Kind]string{KindError: "error", KindDelay: "delay", KindPanic: "panic"}

// ParseSchedule parses the spec grammar above. The empty string yields
// an empty schedule (valid: arming it is a no-op).
func ParseSchedule(spec string) (*Schedule, error) {
	s := &Schedule{Seed: 1}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if v, ok := strings.CutPrefix(clause, "seed="); ok && !strings.Contains(clause, ",") {
			seed, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad seed clause %q: %v", clause, err)
			}
			s.Seed = seed
			continue
		}
		step := Step{Kind: KindError}
		for _, kv := range strings.Split(clause, ",") {
			key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return nil, fmt.Errorf("fault: step clause %q: %q is not key=value", clause, kv)
			}
			key, val = strings.TrimSpace(key), strings.TrimSpace(val)
			switch key {
			case "site":
				step.Site = val
			case "kind":
				switch val {
				case "error":
					step.Kind = KindError
				case "delay":
					step.Kind = KindDelay
				case "panic":
					step.Kind = KindPanic
				default:
					return nil, fmt.Errorf("fault: unknown kind %q (accepted: error, delay, panic)", val)
				}
			case "errno":
				if _, ok := errnoByName[val]; !ok {
					return nil, fmt.Errorf("fault: unknown errno %q (accepted: %s)",
						val, strings.Join(ErrnoNames(), ", "))
				}
				step.Errno = val
			case "prob":
				p, err := strconv.ParseFloat(val, 64)
				if err != nil || p < 0 || p > 1 {
					return nil, fmt.Errorf("fault: bad prob %q (want 0..1)", val)
				}
				step.Prob = p
			case "count":
				n, err := strconv.ParseInt(val, 10, 64)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("fault: bad count %q", val)
				}
				step.Count = n
			case "delay":
				d, err := time.ParseDuration(val)
				if err != nil || d < 0 {
					return nil, fmt.Errorf("fault: bad delay %q", val)
				}
				step.Delay = d
			default:
				return nil, fmt.Errorf("fault: unknown step key %q in %q", key, clause)
			}
		}
		if step.Site == "" {
			return nil, fmt.Errorf("fault: step clause %q has no site", clause)
		}
		if step.Errno != "" && step.Kind != KindError {
			return nil, fmt.Errorf("fault: step clause %q sets errno on a non-error kind", clause)
		}
		s.Steps = append(s.Steps, step)
	}
	return s, nil
}

// String renders the schedule back into the spec grammar; ParseSchedule
// of the result yields an equal schedule.
func (s *Schedule) String() string {
	parts := []string{fmt.Sprintf("seed=%d", s.Seed)}
	for _, st := range s.Steps {
		kvs := []string{"site=" + st.Site, "kind=" + kindNames[st.Kind]}
		if st.Errno != "" {
			kvs = append(kvs, "errno="+st.Errno)
		}
		if st.Prob > 0 {
			kvs = append(kvs, "prob="+strconv.FormatFloat(st.Prob, 'g', -1, 64))
		}
		if st.Count > 0 {
			kvs = append(kvs, "count="+strconv.FormatInt(st.Count, 10))
		}
		if st.Delay > 0 {
			kvs = append(kvs, "delay="+st.Delay.String())
		}
		parts = append(parts, strings.Join(kvs, ","))
	}
	return strings.Join(parts, ";")
}

// Arm enables every step of the schedule concurrently. Each step's
// probability roll is seeded from the schedule seed and the step index,
// so re-arming the same spec reproduces the same firing sequence. A
// later step for a site already armed by this schedule replaces it
// (Enable semantics).
func (s *Schedule) Arm() {
	for i, st := range s.Steps {
		f := Fault{
			Kind:  st.Kind,
			Delay: st.Delay,
			Prob:  st.Prob,
			Count: st.Count,
			Seed:  s.Seed + int64(i)*0x9E3779B9,
		}
		if st.Errno != "" {
			f.Err = errnoByName[st.Errno]
		}
		Enable(st.Site, f)
	}
}

// Disarm disables every site the schedule armed.
func (s *Schedule) Disarm() {
	for _, st := range s.Steps {
		Disable(st.Site)
	}
}

// ScheduleFromEnv parses and arms a schedule from an environment
// variable (hjserve's HJ_CHAOS hook). Unset or empty is a no-op; a
// malformed spec returns the error unarmed.
func ScheduleFromEnv(value string) (*Schedule, error) {
	if strings.TrimSpace(value) == "" {
		return nil, nil
	}
	s, err := ParseSchedule(value)
	if err != nil {
		return nil, err
	}
	s.Arm()
	return s, nil
}
