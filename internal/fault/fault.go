// Package fault provides named failpoints for fault-injection testing.
//
// Production code marks interesting failure sites with fault.Hit(site).
// When no faults are armed the call is a single atomic load; tests arm a
// site with Enable to make it return an injected error, sleep, or panic,
// deterministically or with a given probability. The site catalog below
// is the authoritative list of wired failpoints (see DESIGN.md "Failure
// model").
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Site names wired into the execution stack. Keeping the catalog here
// (rather than in each host package) gives tests and docs one place to
// look; the string is also what Enable and error messages use.
const (
	SiteArenaAlloc   = "arena.alloc"   // arena.TryAlloc admission
	SiteSpillCreate  = "spill.create"  // spill partition file creation
	SiteSpillWrite   = "spill.write"   // write-behind page write
	SiteSpillRead    = "spill.read"    // read-ahead page read
	SiteSpillSync    = "spill.sync"    // writer finish barrier
	SiteSpillRemove  = "spill.remove"  // temp-dir removal at close
	SiteSpillVerify  = "spill.verify"  // page integrity check (fires = flip a payload byte)
	SiteMorselWorker = "native.worker" // morsel worker pair claim
	SiteServeRequest = "serve.request" // hjserve per-request dispatch
)

// Kind selects what an armed failpoint does when it fires.
type Kind int

const (
	// KindError makes Hit return the configured error.
	KindError Kind = iota
	// KindDelay makes Hit sleep for the configured duration, then
	// return nil (the operation proceeds).
	KindDelay
	// KindPanic makes Hit panic with a *PanicValue carrying the site.
	KindPanic
)

// ErrInjected is the sentinel all injected errors unwrap to, so tests
// can assert errors.Is(err, fault.ErrInjected) across wrapping layers.
var ErrInjected = errors.New("fault: injected error")

// InjectedError is what Hit returns for a KindError fault with no
// explicit Err, and what AsInjected converts recovered panics into.
type InjectedError struct {
	Site string
}

func (e *InjectedError) Error() string { return "fault: injected failure at " + e.Site }

func (e *InjectedError) Unwrap() error { return ErrInjected }

// PanicValue is the value a KindPanic failpoint panics with. Recovery
// sites use AsInjected to convert it back into a typed error.
type PanicValue struct {
	Site string
}

func (p *PanicValue) String() string { return "fault: injected panic at " + p.Site }

// AsInjected reports whether a recovered panic value came from a
// KindPanic failpoint, and if so returns it as a typed injected error.
func AsInjected(r any) (error, bool) {
	pv, ok := r.(*PanicValue)
	if !ok {
		return nil, false
	}
	return fmt.Errorf("recovered %s: %w", pv.String(), &InjectedError{Site: pv.Site}), true
}

// Fault configures an armed failpoint.
type Fault struct {
	Kind  Kind
	Err   error         // KindError: error to return; nil means a fresh *InjectedError
	Delay time.Duration // KindDelay: how long to sleep
	Prob  float64       // firing probability per Hit; <=0 or >=1 means always
	Count int64         // fire at most this many times; <=0 means unlimited
	Seed  int64         // seed for the probability roll; 0 means 1
}

type point struct {
	mu        sync.Mutex
	f         Fault
	rng       *rand.Rand
	remaining int64
	hits      atomic.Int64
}

var (
	armed  atomic.Int32 // number of armed sites: fast-path gate
	mu     sync.RWMutex
	points = map[string]*point{}
)

// Enable arms a failpoint at the named site. Re-enabling a site
// replaces its previous configuration.
func Enable(site string, f Fault) {
	seed := f.Seed
	if seed == 0 {
		seed = 1
	}
	p := &point{f: f, rng: rand.New(rand.NewSource(seed)), remaining: f.Count}
	mu.Lock()
	if _, ok := points[site]; !ok {
		armed.Add(1)
	}
	points[site] = p
	mu.Unlock()
}

// Disable disarms the named site. Disabling an unarmed site is a no-op.
func Disable(site string) {
	mu.Lock()
	if _, ok := points[site]; ok {
		delete(points, site)
		armed.Add(-1)
	}
	mu.Unlock()
}

// Reset disarms every site. Tests should defer this after arming.
func Reset() {
	mu.Lock()
	for site := range points {
		delete(points, site)
		armed.Add(-1)
	}
	mu.Unlock()
}

// Hits returns how many times the named site has fired since it was
// last (re-)enabled. Returns 0 for unarmed sites.
func Hits(site string) int64 {
	mu.RLock()
	p := points[site]
	mu.RUnlock()
	if p == nil {
		return 0
	}
	return p.hits.Load()
}

// Hit is the production-side hook. With nothing armed it is a single
// atomic load. With the site armed it rolls the probability, honors the
// count budget, and then errors, sleeps, or panics per the fault kind.
func Hit(site string) error {
	if armed.Load() == 0 {
		return nil
	}
	mu.RLock()
	p := points[site]
	mu.RUnlock()
	if p == nil {
		return nil
	}
	p.mu.Lock()
	if p.f.Count > 0 && p.remaining <= 0 {
		p.mu.Unlock()
		return nil
	}
	if p.f.Prob > 0 && p.f.Prob < 1 && p.rng.Float64() >= p.f.Prob {
		p.mu.Unlock()
		return nil
	}
	if p.f.Count > 0 {
		p.remaining--
	}
	f := p.f
	p.mu.Unlock()
	p.hits.Add(1)
	switch f.Kind {
	case KindDelay:
		time.Sleep(f.Delay)
		return nil
	case KindPanic:
		panic(&PanicValue{Site: site})
	default:
		if f.Err != nil {
			return fmt.Errorf("fault at %s: %w", site, f.Err)
		}
		return &InjectedError{Site: site}
	}
}

// ProbFromEnv reads the HJ_FAULT_PROB environment variable, used by the
// CI fault matrix to sweep firing probability. Unset or invalid values
// default to 1 (always fire).
func ProbFromEnv() float64 {
	s := os.Getenv("HJ_FAULT_PROB")
	if s == "" {
		return 1
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v <= 0 || v > 1 {
		return 1
	}
	return v
}
