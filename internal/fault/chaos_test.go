package fault

import (
	"errors"
	"reflect"
	"strings"
	"syscall"
	"testing"
	"time"
)

// Chaos-schedule contract: the spec grammar parses and round-trips,
// arming is deterministic under a seed, and malformed specs are
// rejected with a diagnostic instead of silently arming nothing.

func TestParseScheduleValid(t *testing.T) {
	spec := " seed=7 ; site=spill.write, kind=error, errno=EIO, prob=0.3, count=2 ;" +
		" site=native.worker, kind=panic, prob=0.05 ;" +
		" site=spill.read, kind=delay, delay=2ms "
	s, err := ParseSchedule(spec)
	if err != nil {
		t.Fatalf("ParseSchedule: %v", err)
	}
	want := &Schedule{Seed: 7, Steps: []Step{
		{Site: SiteSpillWrite, Kind: KindError, Errno: "EIO", Prob: 0.3, Count: 2},
		{Site: SiteMorselWorker, Kind: KindPanic, Prob: 0.05},
		{Site: SiteSpillRead, Kind: KindDelay, Delay: 2 * time.Millisecond},
	}}
	if !reflect.DeepEqual(s, want) {
		t.Fatalf("ParseSchedule = %+v, want %+v", s, want)
	}
}

func TestParseScheduleEmpty(t *testing.T) {
	for _, spec := range []string{"", "  ", ";;"} {
		s, err := ParseSchedule(spec)
		if err != nil {
			t.Fatalf("ParseSchedule(%q): %v", spec, err)
		}
		if len(s.Steps) != 0 || s.Seed != 1 {
			t.Fatalf("ParseSchedule(%q) = %+v, want empty schedule with seed 1", spec, s)
		}
	}
}

func TestParseScheduleErrors(t *testing.T) {
	cases := []struct {
		spec, wantSub string
	}{
		{"seed=x", "bad seed"},
		{"site=spill.write,kind=flaky", "unknown kind"},
		{"site=spill.write,errno=EBOGUS", "unknown errno"},
		{"site=spill.write,prob=1.5", "bad prob"},
		{"site=spill.write,prob=nope", "bad prob"},
		{"site=spill.write,count=-1", "bad count"},
		{"site=spill.write,delay=fast", "bad delay"},
		{"site=spill.write,color=red", "unknown step key"},
		{"kind=error,errno=EIO", "no site"},
		{"site=spill.write,kind=panic,errno=EIO", "errno on a non-error kind"},
		{"site=spill.write,kind", "not key=value"},
	}
	for _, c := range cases {
		_, err := ParseSchedule(c.spec)
		if err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("ParseSchedule(%q) error = %v, want substring %q", c.spec, err, c.wantSub)
		}
	}
}

func TestScheduleStringRoundTrip(t *testing.T) {
	spec := "seed=42;site=spill.write,kind=error,errno=ENOSPC,prob=0.25,count=3;" +
		"site=serve.request,kind=panic,count=1;site=spill.read,kind=delay,delay=1ms"
	s, err := ParseSchedule(spec)
	if err != nil {
		t.Fatalf("ParseSchedule: %v", err)
	}
	again, err := ParseSchedule(s.String())
	if err != nil {
		t.Fatalf("ParseSchedule(String()): %v", err)
	}
	if !reflect.DeepEqual(s, again) {
		t.Fatalf("round trip changed the schedule:\n  first  %+v\n  second %+v", s, again)
	}
}

// TestScheduleArmDeterministic: two armings of the same spec fire the
// same hit pattern — the reproducibility promise a CI failure line
// depends on.
func TestScheduleArmDeterministic(t *testing.T) {
	defer Reset()
	spec := "seed=99;site=spill.write,kind=error,errno=EIO,prob=0.4"
	fire := func() []bool {
		s, err := ParseSchedule(spec)
		if err != nil {
			t.Fatalf("ParseSchedule: %v", err)
		}
		s.Arm()
		var hits []bool
		for i := 0; i < 64; i++ {
			hits = append(hits, Hit(SiteSpillWrite) != nil)
		}
		s.Disarm()
		return hits
	}
	first, second := fire(), fire()
	if !reflect.DeepEqual(first, second) {
		t.Fatal("same schedule spec fired differently across armings")
	}
	fired := 0
	for _, h := range first {
		if h {
			fired++
		}
	}
	if fired == 0 || fired == len(first) {
		t.Fatalf("prob=0.4 fired %d/%d times; the roll is not probabilistic", fired, len(first))
	}
}

// TestScheduleArmErrno: an armed errno step injects an error matching
// both the injected-fault class and the symbolic errno.
func TestScheduleArmErrno(t *testing.T) {
	defer Reset()
	s, err := ParseSchedule("site=spill.write,kind=error,errno=ENOSPC,count=1")
	if err != nil {
		t.Fatalf("ParseSchedule: %v", err)
	}
	s.Arm()
	hit := Hit(SiteSpillWrite)
	if hit == nil {
		t.Fatal("count=1 step did not fire on first hit")
	}
	if !errors.Is(hit, syscall.ENOSPC) {
		t.Fatalf("injected error %v does not match ENOSPC", hit)
	}
	if Hit(SiteSpillWrite) != nil {
		t.Fatal("count=1 step fired twice")
	}
	s.Disarm()
	if Hit(SiteSpillWrite) != nil {
		t.Fatal("disarmed site still fires")
	}
}

func TestScheduleFromEnv(t *testing.T) {
	defer Reset()
	if s, err := ScheduleFromEnv(""); s != nil || err != nil {
		t.Fatalf("empty env = (%v, %v), want (nil, nil)", s, err)
	}
	if s, err := ScheduleFromEnv("site=x,kind=bogus"); s != nil || err == nil {
		t.Fatalf("malformed env = (%v, %v), want error unarmed", s, err)
	}
	s, err := ScheduleFromEnv("site=spill.write,kind=error,count=1")
	if err != nil || s == nil {
		t.Fatalf("valid env = (%v, %v)", s, err)
	}
	if Hit(SiteSpillWrite) == nil {
		t.Fatal("ScheduleFromEnv did not arm the schedule")
	}
	s.Disarm()
}

func TestErrnoNamesSorted(t *testing.T) {
	names := ErrnoNames()
	if len(names) != len(errnoByName) {
		t.Fatalf("ErrnoNames() lists %d names, registry has %d", len(names), len(errnoByName))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("ErrnoNames() not sorted: %v", names)
		}
	}
}

// FuzzChaosSchedule: any spec that parses must render (String) back to
// a spec that re-parses to an equal schedule, and must arm and disarm
// without panicking or leaving residue.
func FuzzChaosSchedule(f *testing.F) {
	f.Add("")
	f.Add("seed=7")
	f.Add("seed=7;site=spill.write,kind=error,errno=EIO,prob=0.3,count=2")
	f.Add("site=native.worker,kind=panic,prob=0.05;site=spill.read,kind=delay,delay=2ms")
	f.Add("site=a,kind=error;site=a,kind=delay,delay=1ns")
	f.Add("seed=-9223372036854775808;site=x,kind=error,prob=1,count=0")
	f.Fuzz(func(t *testing.T, spec string) {
		s, err := ParseSchedule(spec)
		if err != nil {
			return
		}
		defer Reset()
		again, err := ParseSchedule(s.String())
		if err != nil {
			t.Fatalf("String() %q of valid schedule does not re-parse: %v", s.String(), err)
		}
		if !reflect.DeepEqual(s, again) {
			t.Fatalf("round trip changed schedule for %q:\n  first  %+v\n  second %+v", spec, s, again)
		}
		s.Arm()
		s.Disarm()
		for _, st := range s.Steps {
			if Hits(st.Site) != 0 && Hit(st.Site) != nil {
				t.Fatalf("site %q still armed after Disarm", st.Site)
			}
		}
	})
}
