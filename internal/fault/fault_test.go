package fault

import (
	"errors"
	"os"
	"testing"
	"time"
)

func TestUnarmedHitIsNil(t *testing.T) {
	Reset()
	if err := Hit(SiteSpillWrite); err != nil {
		t.Fatalf("unarmed Hit = %v, want nil", err)
	}
	if got := Hits(SiteSpillWrite); got != 0 {
		t.Fatalf("Hits on unarmed site = %d, want 0", got)
	}
}

func TestErrorInjection(t *testing.T) {
	defer Reset()
	Enable(SiteSpillWrite, Fault{Kind: KindError})
	err := Hit(SiteSpillWrite)
	if err == nil {
		t.Fatal("armed Hit = nil, want injected error")
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("errors.Is(%v, ErrInjected) = false", err)
	}
	var ie *InjectedError
	if !errors.As(err, &ie) || ie.Site != SiteSpillWrite {
		t.Fatalf("err = %v, want *InjectedError at %s", err, SiteSpillWrite)
	}
	// A different site stays unarmed.
	if err := Hit(SiteSpillRead); err != nil {
		t.Fatalf("other site Hit = %v, want nil", err)
	}
}

func TestCustomErrorWrapped(t *testing.T) {
	defer Reset()
	sentinel := errors.New("disk on fire")
	Enable(SiteSpillRead, Fault{Kind: KindError, Err: sentinel})
	err := Hit(SiteSpillRead)
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrap of sentinel", err)
	}
}

func TestCountBudget(t *testing.T) {
	defer Reset()
	Enable(SiteArenaAlloc, Fault{Kind: KindError, Count: 2})
	var fired int
	for i := 0; i < 5; i++ {
		if Hit(SiteArenaAlloc) != nil {
			fired++
		}
	}
	if fired != 2 {
		t.Fatalf("fired %d times, want 2", fired)
	}
	if got := Hits(SiteArenaAlloc); got != 2 {
		t.Fatalf("Hits = %d, want 2", got)
	}
}

func TestProbabilityRoughlyHonored(t *testing.T) {
	defer Reset()
	Enable(SiteMorselWorker, Fault{Kind: KindError, Prob: 0.3, Seed: 42})
	var fired int
	const n = 2000
	for i := 0; i < n; i++ {
		if Hit(SiteMorselWorker) != nil {
			fired++
		}
	}
	if fired < n/5 || fired > n/2 {
		t.Fatalf("prob 0.3 fired %d/%d times, outside [%d,%d]", fired, n, n/5, n/2)
	}
}

func TestDelayKind(t *testing.T) {
	defer Reset()
	Enable(SiteSpillSync, Fault{Kind: KindDelay, Delay: 20 * time.Millisecond})
	start := time.Now()
	if err := Hit(SiteSpillSync); err != nil {
		t.Fatalf("delay Hit = %v, want nil", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("delay Hit returned after %v, want >= 20ms", d)
	}
}

func TestPanicKindAndAsInjected(t *testing.T) {
	defer Reset()
	Enable(SiteSpillWrite, Fault{Kind: KindPanic})
	var recovered error
	func() {
		defer func() {
			if r := recover(); r != nil {
				if e, ok := AsInjected(r); ok {
					recovered = e
					return
				}
				panic(r)
			}
		}()
		_ = Hit(SiteSpillWrite)
		t.Fatal("KindPanic Hit returned")
	}()
	if recovered == nil || !errors.Is(recovered, ErrInjected) {
		t.Fatalf("recovered = %v, want injected error", recovered)
	}
	if e, ok := AsInjected(errors.New("not a panic value")); ok {
		t.Fatalf("AsInjected(non-panic-value) = %v, true", e)
	}
}

func TestDisableAndReset(t *testing.T) {
	Enable(SiteSpillWrite, Fault{Kind: KindError})
	Disable(SiteSpillWrite)
	if err := Hit(SiteSpillWrite); err != nil {
		t.Fatalf("disabled Hit = %v, want nil", err)
	}
	Enable(SiteSpillWrite, Fault{Kind: KindError})
	Enable(SiteSpillRead, Fault{Kind: KindError})
	Reset()
	if Hit(SiteSpillWrite) != nil || Hit(SiteSpillRead) != nil {
		t.Fatal("Hit after Reset fired")
	}
	if armed.Load() != 0 {
		t.Fatalf("armed = %d after Reset, want 0", armed.Load())
	}
}

func TestProbFromEnv(t *testing.T) {
	t.Setenv("HJ_FAULT_PROB", "")
	if got := ProbFromEnv(); got != 1 {
		t.Fatalf("unset HJ_FAULT_PROB = %v, want 1", got)
	}
	t.Setenv("HJ_FAULT_PROB", "0.35")
	if got := ProbFromEnv(); got != 0.35 {
		t.Fatalf("HJ_FAULT_PROB=0.35 parsed as %v", got)
	}
	t.Setenv("HJ_FAULT_PROB", "bogus")
	if got := ProbFromEnv(); got != 1 {
		t.Fatalf("invalid HJ_FAULT_PROB = %v, want 1", got)
	}
}

func TestCheckNoFiles(t *testing.T) {
	dir := t.TempDir()
	CheckNoFiles(t, dir)                   // empty: passes
	CheckNoFiles(t, dir+"/missing-subdir") // missing: passes
	if err := os.WriteFile(dir+"/orphan", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	ft := &fakeTB{}
	CheckNoFiles(ft, dir)
	if !ft.failed {
		t.Fatal("CheckNoFiles passed on a dir with an orphan file")
	}
}

func TestCheckGoroutines(t *testing.T) {
	base := Goroutines()
	done := make(chan struct{})
	go func() { <-done }()
	ft := &fakeTB{}
	checkGoroutinesWithin(ft, base, 50*time.Millisecond)
	if !ft.failed {
		t.Fatal("CheckGoroutines passed with a live extra goroutine")
	}
	close(done)
	CheckGoroutines(t, base)
}

// checkGoroutinesWithin is CheckGoroutines with a short deadline so the
// failing case doesn't stall the test for the full grace period.
func checkGoroutinesWithin(t TB, baseline int, grace time.Duration) {
	deadline := time.Now().Add(grace)
	for {
		if Goroutines() <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak")
			return
		}
		time.Sleep(time.Millisecond)
	}
}

type fakeTB struct{ failed bool }

func (f *fakeTB) Helper()                           {}
func (f *fakeTB) Fatalf(format string, args ...any) { f.failed = true }
